//! Property tests for the dynamic-graph layer: a snapshot plus a random
//! insert/delete stream plus compaction must be indistinguishable from a
//! CSR rebuilt from scratch from the final edge set — for both adjacency
//! halves, under interleaved compaction schedules, and with the
//! compressed companion re-encoded.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use vebo_graph::graph::mix64;
use vebo_graph::{Adjacency, Compactor, DynamicGraph, EdgeMut, Graph, VertexId};

/// Arbitrary initial edges plus a mutation stream over the same vertex
/// range, all derived from one seed so failures shrink cleanly.
fn arb_stream() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>, Vec<EdgeMut>)> {
    (2usize..40, 0usize..150, 0usize..120, any::<u64>()).prop_map(|(n, m, k, seed)| {
        let mut x = seed;
        let mut next = || {
            x = mix64(x);
            x
        };
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as VertexId,
                    (next() % n as u64) as VertexId,
                )
            })
            .collect();
        let ops: Vec<EdgeMut> = (0..k)
            .map(|_| {
                let u = (next() % n as u64) as VertexId;
                let v = (next() % n as u64) as VertexId;
                if next() % 2 == 0 {
                    EdgeMut::Insert(u, v)
                } else {
                    EdgeMut::Delete(u, v)
                }
            })
            .collect();
        (n, edges, ops)
    })
}

/// Reference model: replay the mutation stream against the snapshot's
/// arc multiset with the documented clamp semantics (insert fires only
/// when the arc is absent, delete removes one stored occurrence,
/// undirected ops maintain both mirrored arcs, self-loops one).
fn replay(g: &Graph, ops: &[EdgeMut]) -> Vec<(VertexId, VertexId)> {
    let mut multi: HashMap<(VertexId, VertexId), i64> = HashMap::new();
    for u in g.vertices() {
        for &v in g.out_neighbors(u) {
            *multi.entry((u, v)).or_insert(0) += 1;
        }
    }
    for op in ops {
        let (insert, u, v) = match *op {
            EdgeMut::Insert(u, v) => (true, u, v),
            EdgeMut::Delete(u, v) => (false, u, v),
        };
        let arcs: &[(VertexId, VertexId)] = if g.is_directed() || u == v {
            &[(u, v)]
        } else {
            &[(u, v), (v, u)]
        };
        for &a in arcs {
            let e = multi.entry(a).or_insert(0);
            if insert && *e == 0 {
                *e += 1;
            } else if !insert && *e > 0 {
                *e -= 1;
            }
        }
    }
    let mut arcs = Vec::new();
    for (&(u, v), &c) in &multi {
        for _ in 0..c {
            arcs.push((u, v));
        }
    }
    arcs
}

fn apply_ops(dg: &DynamicGraph, ops: &[EdgeMut]) {
    for op in ops {
        match *op {
            EdgeMut::Insert(u, v) => dg.insert_edge(u, v).expect("in-range unweighted insert"),
            EdgeMut::Delete(u, v) => dg.delete_edge(u, v).expect("in-range unweighted delete"),
        }
    }
}

/// Asserts the dynamic graph's current snapshot equals a from-scratch
/// rebuild of `arcs`, both halves.
fn assert_matches_scratch(dg: &DynamicGraph, arcs: &[(VertexId, VertexId)]) {
    let n = dg.num_vertices();
    let g = dg.snapshot();
    let scratch_out = Adjacency::from_pairs(n, arcs);
    let reversed: Vec<(VertexId, VertexId)> = arcs.iter().map(|&(u, v)| (v, u)).collect();
    let scratch_in = Adjacency::from_pairs(n, &reversed);
    assert_eq!(g.csr(), &scratch_out, "CSR diverged from scratch rebuild");
    assert_eq!(g.csc(), &scratch_in, "CSC diverged from scratch rebuild");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Directed: stream + one compaction ≡ from-scratch CSR/CSC.
    #[test]
    fn directed_compaction_matches_scratch((n, edges, ops) in arb_stream()) {
        let dg = DynamicGraph::new(Graph::from_edges(n, &edges, true));
        let arcs = replay(&dg.snapshot(), &ops);
        apply_ops(&dg, &ops);
        dg.compact();
        assert_matches_scratch(&dg, &arcs);
    }

    /// Undirected: mirrored-arc maintenance keeps both halves equal to a
    /// from-scratch symmetric rebuild.
    #[test]
    fn undirected_compaction_matches_scratch((n, edges, ops) in arb_stream()) {
        let dg = DynamicGraph::new(Graph::from_edges(n, &edges, false));
        let arcs = replay(&dg.snapshot(), &ops);
        apply_ops(&dg, &ops);
        dg.compact();
        assert_matches_scratch(&dg, &arcs);
        let g = dg.snapshot();
        prop_assert_eq!(g.csr(), g.csc());
    }

    /// Interleaving compactions anywhere in the stream cannot change the
    /// final snapshot.
    #[test]
    fn compaction_schedule_is_irrelevant((n, edges, ops) in arb_stream(), cut in any::<u64>()) {
        let dg = DynamicGraph::new(Graph::from_edges(n, &edges, true));
        let arcs = replay(&dg.snapshot(), &ops);
        let cut = if ops.is_empty() { 0 } else { (cut % ops.len() as u64) as usize };
        apply_ops(&dg, &ops[..cut]);
        dg.compact();
        apply_ops(&dg, &ops[cut..]);
        dg.compact();
        assert_matches_scratch(&dg, &arcs);
    }

    /// The pin-time delta overlay previews exactly what compaction will
    /// publish, per vertex, in both directions.
    #[test]
    fn overlay_previews_compaction((n, edges, ops) in arb_stream()) {
        let dg = DynamicGraph::new(Graph::from_edges(n, &edges, true));
        apply_ops(&dg, &ops);
        let pin = dg.pin();
        dg.compact();
        let compacted = dg.snapshot();
        for v in 0..n as VertexId {
            prop_assert_eq!(
                pin.overlay().out_neighbors(pin.graph(), v),
                compacted.out_neighbors(v),
                "out overlay diverged at {}", v
            );
            prop_assert_eq!(
                pin.overlay().in_neighbors(pin.graph(), v),
                compacted.in_neighbors(v),
                "in overlay diverged at {}", v
            );
        }
    }

    /// A mutator racing a background [`Compactor`] — cycles requested at
    /// arbitrary points mid-stream, epochs pinned between them — ends at
    /// exactly the from-scratch rebuild, and every pinned epoch keeps
    /// serving its prefix of the stream unchanged no matter how many
    /// compactions commit underneath it.
    #[test]
    fn concurrent_compactor_matches_scratch(
        (n, edges, ops) in arb_stream(),
        every in 1usize..8,
    ) {
        let dg = Arc::new(DynamicGraph::new(Graph::from_edges(n, &edges, true)));
        let g0 = dg.snapshot();
        let arcs = replay(&g0, &ops);
        let compactor = Compactor::for_graph(Arc::clone(&dg));
        let mut pins = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                EdgeMut::Insert(u, v) => dg.insert_edge(u, v).unwrap(),
                EdgeMut::Delete(u, v) => dg.delete_edge(u, v).unwrap(),
            }
            if i % every == 0 {
                // Pin BEFORE signalling: the pinned view captures the
                // stream prefix through op i and must keep serving it
                // while (and after) the compactor merges concurrently.
                pins.push((dg.pin(), i + 1));
                compactor.request();
            }
        }
        compactor.drain();
        for (pin, len) in &pins {
            let expect = Adjacency::from_pairs(n, &replay(&g0, &ops[..*len]));
            for v in 0..n as VertexId {
                prop_assert_eq!(
                    pin.overlay().out_neighbors(pin.graph(), v),
                    expect.neighbors(v),
                    "pinned epoch at prefix {} diverged at vertex {}", len, v
                );
            }
        }
        drop(pins);
        drop(compactor);
        // The settled graph is bit-identical to a from-scratch build —
        // background scheduling cannot change what compaction produces.
        dg.compact();
        assert_matches_scratch(&dg, &arcs);
    }

    /// Compaction of a compressed snapshot re-encodes the companion so
    /// it decodes to exactly the merged target array.
    #[test]
    fn compressed_companion_reencodes((n, edges, ops) in arb_stream()) {
        let dg = DynamicGraph::new(Graph::from_edges(n, &edges, true).with_compressed());
        let arcs = replay(&dg.snapshot(), &ops);
        apply_ops(&dg, &ops);
        dg.compact();
        assert_matches_scratch(&dg, &arcs);
        let g = dg.snapshot();
        let c = g.csr().compressed().expect("companion must survive compaction");
        let decoded = c.decode_to_targets(g.csr().offsets()).unwrap();
        prop_assert_eq!(decoded.as_slice(), g.csr().targets());
    }
}
