//! Property tests for the streaming I/O subsystem: the chunked parallel
//! parsers must be bit-identical to naive in-memory reference parsers for
//! every format, for arbitrary graphs, chunk sizes, and read-size caps —
//! and the binary round-trip must reproduce the CSR arrays exactly.

use proptest::prelude::*;
use std::io::Read;
use vebo_graph::graph::mix64;
use vebo_graph::io::{self, Format, LineChunker, StreamConfig};
use vebo_graph::{Graph, GraphError, ParMode, StorageKind, VertexId};

/// A reader that returns at most `cap` bytes per `read` call — the
/// adversarial transport for the bounded-allocation guarantees.
struct Capped<R> {
    inner: R,
    cap: usize,
}

impl<R: Read> Read for Capped<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let end = buf.len().min(self.cap);
        self.inner.read(&mut buf[..end])
    }
}

/// Naive whole-buffer edge-list parser: the semantic reference the
/// streaming implementation must match bit for bit. Honors the
/// `# vertices <n> ...` header comment like the real reader.
fn reference_edge_list(text: &str, directed: bool) -> Option<Graph> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_v = 0u64;
    let hint: usize = text
        .lines()
        .next()
        .and_then(|l| {
            let mut it = l.trim().strip_prefix('#')?.split_whitespace();
            if it.next()? != "vertices" {
                return None;
            }
            it.next()?.parse().ok()
        })
        .unwrap_or(0);
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u64 = it.next()?.parse().ok()?;
        let v: u64 = it.next()?.parse().ok()?;
        max_v = max_v.max(u).max(v);
        edges.push((u as VertexId, v as VertexId));
    }
    let n = (max_v as usize + 1)
        .max(hint)
        .max(usize::from(!edges.is_empty()));
    Some(Graph::from_edges(n, &edges, directed))
}

/// Arbitrary small multigraphs (parallel edges and self-loops included).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..60, 0usize..300, any::<u64>(), any::<bool>()).prop_map(|(n, m, seed, directed)| {
        let mut x = seed;
        let mut next = || {
            x = mix64(x);
            x
        };
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as VertexId,
                    (next() % n as u64) as VertexId,
                )
            })
            .collect();
        Graph::from_edges(n, &edges, directed)
    })
}

/// Arbitrary graphs with optional per-edge weights. Vertex counts often
/// exceed the largest endpoint, so trailing isolated vertices are
/// routinely exercised; parallel edges and self-loops included.
fn arb_weighted_graph() -> impl Strategy<Value = Graph> {
    (
        1usize..60,
        0usize..300,
        any::<u64>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(n, m, seed, directed, weighted)| {
            let mut x = seed;
            let mut next = || {
                x = mix64(x);
                x
            };
            let edges: Vec<(VertexId, VertexId)> = (0..m)
                .map(|_| {
                    (
                        (next() % n as u64) as VertexId,
                        (next() % n as u64) as VertexId,
                    )
                })
                .collect();
            let weights: Option<Vec<f32>> =
                weighted.then(|| edges.iter().map(|_| (next() % 1000) as f32 / 8.0).collect());
            Graph::from_edges_weighted(n, &edges, weights.as_deref(), directed)
        })
}

/// Writes `bytes` to a unique temp `.vgr`, runs `f` on the path, cleans
/// up. Unique names keep concurrent proptest cases from colliding.
fn with_temp_vgr<R>(bytes: &[u8], f: impl FnOnce(&std::path::Path) -> R) -> R {
    use std::sync::atomic::{AtomicU64, Ordering};
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "vebo-io-stream-prop-{}-{}.vgr",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).unwrap();
    let out = f(&path);
    std::fs::remove_file(&path).ok();
    out
}

fn in_pool<R: Send>(f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap()
        .install(f)
}

fn assert_same(a: &Graph, b: &Graph, what: &str) {
    assert_eq!(a.num_vertices(), b.num_vertices(), "{what}: vertex count");
    assert_eq!(a.csr().offsets(), b.csr().offsets(), "{what}: offsets");
    assert_eq!(a.csr().targets(), b.csr().targets(), "{what}: targets");
    assert_eq!(a.csc().offsets(), b.csc().offsets(), "{what}: csc offsets");
    assert_eq!(a.csc().targets(), b.csc().targets(), "{what}: csc targets");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Streamed parallel edge-list parse == sequential parse == naive
    /// reference, across chunk sizes that force mid-file boundaries.
    #[test]
    fn edge_list_streaming_matches_reference(g in arb_graph(), chunk in 16usize..300) {
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        let reference = reference_edge_list(&text, g.is_directed()).unwrap();
        // The writer's `# vertices` header makes the round-trip lossless
        // even with trailing isolated vertices.
        assert_same(&g, &reference, "writer/reference");

        let mut seq_cfg = StreamConfig::with_chunk_size(chunk);
        seq_cfg.mode = ParMode::Sequential;
        let seq = io::read_edge_list_with(&buf[..], g.is_directed(), None, &seq_cfg).unwrap();
        assert_same(&reference, &seq, "sequential stream");

        let mut par_cfg = StreamConfig::with_chunk_size(chunk);
        par_cfg.mode = ParMode::Parallel;
        let par = in_pool(|| {
            io::read_edge_list_with(&buf[..], g.is_directed(), None, &par_cfg).unwrap()
        });
        assert_same(&reference, &par, "parallel stream");
    }

    /// Streamed AdjacencyGraph parse (sequential and parallel, tiny
    /// chunks) reproduces the writer's graph exactly.
    #[test]
    fn adjacency_streaming_matches_writer(g in arb_graph(), chunk in 16usize..300) {
        let mut buf = Vec::new();
        io::write_adjacency_graph(&g, &mut buf).unwrap();

        let mut seq_cfg = StreamConfig::with_chunk_size(chunk);
        seq_cfg.mode = ParMode::Sequential;
        let seq = io::read_adjacency_graph_with(&buf[..], g.is_directed(), &seq_cfg).unwrap();
        assert_same(&g, &seq, "sequential stream");

        let mut par_cfg = StreamConfig::with_chunk_size(chunk);
        par_cfg.mode = ParMode::Parallel;
        let par = in_pool(|| {
            io::read_adjacency_graph_with(&buf[..], g.is_directed(), &par_cfg).unwrap()
        });
        assert_same(&g, &par, "parallel stream");
    }

    /// Binary round-trip reproduces offsets and targets exactly, and
    /// survives an adversarial transport that drips bytes.
    #[test]
    fn binary_roundtrip_is_exact(g in arb_graph(), cap in 1usize..64) {
        let mut buf = Vec::new();
        io::write_binary_graph(&g, &mut buf).unwrap();
        let h = io::read_binary_graph(&buf[..]).unwrap();
        assert_same(&g, &h, "binary");
        prop_assert_eq!(h.is_directed(), g.is_directed());
        let dripped = io::read_binary_graph(Capped { inner: &buf[..], cap }).unwrap();
        assert_same(&g, &dripped, "binary via capped reader");
    }

    /// The aligned v2 layout: write → mmap → read equals write →
    /// buffered-read for arbitrary graphs — isolated vertices, weights,
    /// self-loops, parallel edges — and the mapped load is zero-copy on
    /// hosts that support it.
    #[test]
    fn binary_v2_mmap_matches_buffered(g in arb_weighted_graph()) {
        let mut buf = Vec::new();
        io::write_binary_graph(&g, &mut buf).unwrap();
        let buffered = io::read_binary_graph(&buf[..]).unwrap();
        assert_same(&g, &buffered, "v2 buffered");
        let mapped = with_temp_vgr(&buf, |p| io::mmap_binary_graph(p).unwrap());
        assert_same(&buffered, &mapped, "v2 mmap vs buffered");
        prop_assert_eq!(mapped.is_directed(), g.is_directed());
        prop_assert_eq!(mapped.csr().raw_weights(), g.csr().raw_weights());
        prop_assert_eq!(mapped.csc().raw_weights(), buffered.csc().raw_weights());
        if cfg!(all(target_endian = "little", target_pointer_width = "64")) {
            prop_assert_eq!(mapped.storage_kind(), StorageKind::Mapped);
        }
        // Content equality crosses storage backings.
        prop_assert!(mapped.csr() == buffered.csr());
    }

    /// The unaligned v1 layout still round-trips through both load paths
    /// (the mmap loader's documented fallback copies every section).
    #[test]
    fn binary_v1_fallback_matches_buffered(g in arb_weighted_graph()) {
        let mut v1 = Vec::new();
        io::write_binary_graph_versioned(&g, &mut v1, io::BINARY_VERSION_V1).unwrap();
        let buffered = io::read_binary_graph(&v1[..]).unwrap();
        assert_same(&g, &buffered, "v1 buffered");
        let mapped = with_temp_vgr(&v1, |p| io::mmap_binary_graph(p).unwrap());
        assert_same(&buffered, &mapped, "v1 mmap fallback");
        prop_assert_eq!(mapped.csr().raw_weights(), g.csr().raw_weights());
        // v1 sections are 4-byte aligned only: never borrowed.
        prop_assert_eq!(mapped.storage_kind(), StorageKind::Owned);
    }

    /// A graph carrying a delta-varint companion auto-selects the v3
    /// layout; both load paths reproduce the original arrays exactly —
    /// weights, trailing isolated vertices, self-loops, parallel edges —
    /// and the reloaded graph reports the compressed backing.
    #[test]
    fn binary_v3_compressed_roundtrip_matches_owned(g in arb_weighted_graph()) {
        let mut buf = Vec::new();
        io::write_binary_graph(&g.clone().with_compressed(), &mut buf).unwrap();
        let buffered = io::read_binary_graph(&buf[..]).unwrap();
        assert_same(&g, &buffered, "v3 buffered");
        prop_assert_eq!(buffered.csr().raw_weights(), g.csr().raw_weights());
        prop_assert_eq!(buffered.storage_kind(), StorageKind::Compressed);
        let mapped = with_temp_vgr(&buf, |p| io::mmap_binary_graph(p).unwrap());
        assert_same(&buffered, &mapped, "v3 mmap vs buffered");
        prop_assert_eq!(mapped.csr().raw_weights(), g.csr().raw_weights());
        prop_assert_eq!(mapped.csc().raw_weights(), buffered.csc().raw_weights());
        prop_assert_eq!(mapped.storage_kind(), StorageKind::Compressed);
        prop_assert_eq!(mapped.is_directed(), g.is_directed());
    }

    /// Truncating a v3 file at any byte must also yield a typed error
    /// from both loaders — the compressed sections (`byte_offsets`, the
    /// varint `data` payload) are held to the same section-precise bar
    /// as the plain v2 sections.
    #[test]
    fn binary_v3_truncation_errors_everywhere(g in arb_weighted_graph(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        io::write_binary_graph(&g.clone().with_compressed(), &mut buf).unwrap();
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        let buffered = io::read_binary_graph(&buf[..cut]);
        let mapped = with_temp_vgr(&buf[..cut], |p| io::mmap_binary_graph(p));
        for (which, res) in [("buffered", buffered), ("mmap", mapped)] {
            match res {
                Err(GraphError::TruncatedBinary { .. }) | Err(GraphError::BadMagic) => {}
                other => prop_assert!(false, "v3 {which} cut at {cut}: {other:?}"),
            }
        }
    }

    /// Truncating a v2 file at any byte must yield a section-precise
    /// `TruncatedBinary` (or, within the first four bytes, `BadMagic`)
    /// from BOTH loaders — never a panic, never a wrong graph.
    #[test]
    fn binary_truncation_errors_everywhere(g in arb_weighted_graph(), frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        io::write_binary_graph(&g, &mut buf).unwrap();
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        let buffered = io::read_binary_graph(&buf[..cut]);
        let mapped = with_temp_vgr(&buf[..cut], |p| io::mmap_binary_graph(p));
        for (which, res) in [("buffered", buffered), ("mmap", mapped)] {
            match res {
                Err(GraphError::TruncatedBinary { .. }) | Err(GraphError::BadMagic) => {}
                other => prop_assert!(false, "{which} cut at {cut}: {other:?}"),
            }
        }
    }

    /// Round-trip through real files for all three formats, with format
    /// sniffing.
    #[test]
    fn file_roundtrip_all_formats(g in arb_graph(), salt in any::<u64>()) {
        let dir = std::env::temp_dir().join(format!("vebo-io-prop-{salt:x}"));
        std::fs::create_dir_all(&dir).unwrap();
        for format in Format::ALL {
            let path = dir.join(format!("g.{}", format.name()));
            io::save_graph(&g, &path, format).unwrap();
            let (h, sniffed) = io::load_graph(&path, g.is_directed(), None).unwrap();
            prop_assert_eq!(sniffed, format);
            assert_same(&g, &h, format.name());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The line chunker reassembles any byte soup losslessly and never
    /// buffers more than a chunk plus the longest line, even when the
    /// transport drips a few bytes at a time.
    #[test]
    fn chunker_is_lossless_and_bounded(
        seed in any::<u64>(),
        nlines in 0usize..40,
        chunk in 16usize..128,
        cap in 1usize..32,
    ) {
        let mut x = seed;
        let mut next = || {
            x = mix64(x);
            x
        };
        // Random printable lines of length 0..=40.
        let lines: Vec<String> = (0..nlines)
            .map(|_| {
                let len = (next() % 41) as usize;
                (0..len)
                    .map(|_| char::from(b' ' + (next() % 95) as u8))
                    .collect()
            })
            .collect();
        let text = lines.join("\n");
        let mut chunker = LineChunker::new(
            Capped { inner: text.as_bytes(), cap },
            chunk,
        );
        let mut glued = Vec::new();
        for c in chunker.by_ref() {
            glued.extend_from_slice(&c.unwrap().bytes);
        }
        prop_assert_eq!(&glued, text.as_bytes());
        let longest = lines.iter().map(|l| l.len() + 1).max().unwrap_or(0);
        prop_assert!(chunker.peak_buffered() <= chunk.max(16) + longest + chunk.max(16));
    }
}

/// Acceptance check: a multi-chunk parse through a read-capped adapter
/// never buffers more than O(chunk) input text while producing the exact
/// same graph — i.e. loading works without materializing the file.
#[test]
fn multi_chunk_capped_read_is_bounded_and_exact() {
    // ~12k edges over vertex ids up to 9999: ~100 KB of text.
    let edges: Vec<(VertexId, VertexId)> = (0..12_000u32)
        .map(|i| {
            let x = mix64(i as u64 + 7);
            ((x % 10_000) as VertexId, ((x >> 20) % 10_000) as VertexId)
        })
        .collect();
    let g = Graph::from_edges(10_000, &edges, true);
    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).unwrap();
    assert!(buf.len() > 60_000, "test input must span many chunks");

    let chunk_size = 1024;
    let mut chunker = LineChunker::new(
        Capped {
            inner: &buf[..],
            cap: 13,
        },
        chunk_size,
    );
    let mut chunks = 0;
    for c in chunker.by_ref() {
        c.unwrap();
        chunks += 1;
    }
    assert!(chunks > 10, "expected a multi-chunk read, got {chunks}");
    let longest_line = buf
        .split(|&b| b == b'\n')
        .map(|l| l.len() + 1)
        .max()
        .unwrap();
    assert!(
        chunker.peak_buffered() <= chunk_size + longest_line,
        "peak buffered {} exceeds chunk_size {} + longest line {}",
        chunker.peak_buffered(),
        chunk_size,
        longest_line
    );

    // End-to-end through the same adapter: identical graph, in both
    // execution modes.
    for mode in [ParMode::Sequential, ParMode::Parallel] {
        let mut cfg = StreamConfig::with_chunk_size(chunk_size);
        cfg.mode = mode;
        let h = in_pool(|| {
            io::read_edge_list_with(
                Capped {
                    inner: &buf[..],
                    cap: 13,
                },
                true,
                None,
                &cfg,
            )
            .unwrap()
        });
        assert_same(&g, &h, "capped end-to-end");
    }
}

/// Malformed inputs fail with positioned errors instead of panicking —
/// including chunk boundaries that land mid-token.
#[test]
fn malformed_inputs_error_cleanly() {
    use vebo_graph::GraphError;

    // Chunk boundary forced inside a long token: the chunker must never
    // split a token, so this parses.
    let text = "1000000 2000000\n3000000 4000000\n";
    let cfg = StreamConfig::with_chunk_size(16);
    let g = io::read_edge_list_with(text.as_bytes(), true, None, &cfg).unwrap();
    assert_eq!(g.num_edges(), 2);
    assert_eq!(g.num_vertices(), 4_000_001);

    // A dangling token at a tiny chunk size reports its true line.
    let bad = "0 1\n2\n";
    let err = io::read_edge_list_with(bad.as_bytes(), true, None, &cfg).unwrap_err();
    assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");

    // Truncated binary header.
    let err = io::read_binary_graph(&io::BINARY_MAGIC[..]).unwrap_err();
    assert!(
        matches!(
            err,
            GraphError::TruncatedBinary {
                section: "header",
                ..
            }
        ),
        "{err}"
    );

    // Binary truncated inside the targets array, dripped through a capped
    // reader.
    let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], true);
    let mut buf = Vec::new();
    io::write_binary_graph(&g, &mut buf).unwrap();
    buf.truncate(buf.len() - 2);
    let err = io::read_binary_graph(Capped {
        inner: &buf[..],
        cap: 3,
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            GraphError::TruncatedBinary {
                section: "targets",
                ..
            }
        ),
        "{err}"
    );

    // A header that lies about n/m must yield a parse error, not a
    // capacity-overflow panic or a huge up-front allocation.
    let lying = "AdjacencyGraph\n1\n18000000000000000000\n0\n";
    let err = io::read_adjacency_graph_with(lying.as_bytes(), true, &cfg).unwrap_err();
    assert!(matches!(err, GraphError::Parse { .. }), "{err}");
    let lying_m = "AdjacencyGraph\n2\n10000000000\n0\n1\n1\n";
    let err = io::read_adjacency_graph_with(lying_m.as_bytes(), true, &cfg).unwrap_err();
    assert!(matches!(err, GraphError::Parse { .. }), "{err}");
    let lying_n = "AdjacencyGraph\n10000000000\n1\n0\n0\n";
    let err = io::read_adjacency_graph_with(lying_n.as_bytes(), true, &cfg).unwrap_err();
    assert!(matches!(err, GraphError::Parse { .. }), "{err}");

    // CRLF everywhere, including the Ligra header.
    let crlf = "AdjacencyGraph\r\n3\r\n2\r\n0\r\n1\r\n2\r\n1\r\n2\r\n";
    let g = io::read_adjacency_graph_with(crlf.as_bytes(), true, &cfg).unwrap();
    assert_eq!(g.num_vertices(), 3);
    assert_eq!(g.num_edges(), 2);
    assert_eq!(g.csr().neighbors(0), &[1]);
    assert_eq!(g.csr().neighbors(1), &[2]);
}
