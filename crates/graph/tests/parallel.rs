//! Property tests for the parallel reorder pipeline: the parallel CSR
//! builder, transpose, and `apply_graph` must produce results *identical*
//! to the sequential reference paths — same offsets, same targets, same
//! weights — for arbitrary multigraphs and permutations.
//!
//! The parallel paths are forced with [`ParMode::Parallel`] inside a
//! multi-thread pool so they really execute concurrently even though
//! `ParMode::Auto` would fall back to sequential at these sizes.

use proptest::prelude::*;
use vebo_graph::adjacency::Adjacency;
use vebo_graph::degree::{in_degree_histogram_with, vertices_by_decreasing_in_degree_with};
use vebo_graph::gen::random_permutation;
use vebo_graph::graph::mix64;
use vebo_graph::{Graph, ParMode, VertexId};

/// Arbitrary (n, edges, weights) triples, including parallel edges and
/// self-loops.
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>, Vec<f32>)> {
    (1usize..120, 0usize..600, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut x = seed;
        let mut next = || {
            x = mix64(x);
            x
        };
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as VertexId,
                    (next() % n as u64) as VertexId,
                )
            })
            .collect();
        let weights: Vec<f32> = (0..m).map(|_| (next() % 1000) as f32 / 10.0).collect();
        (n, edges, weights)
    })
}

/// Runs `f` inside a 4-thread pool so forced-parallel paths really fan out.
fn in_pool<R: Send>(f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap()
        .install(f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel counting-sort CSR build == sequential build, unweighted.
    #[test]
    fn parallel_csr_build_matches_sequential((n, edges, _w) in arb_edges()) {
        let seq = Adjacency::from_pairs_with(n, &edges, None, ParMode::Sequential);
        let par = in_pool(|| Adjacency::from_pairs_with(n, &edges, None, ParMode::Parallel));
        prop_assert_eq!(seq, par);
    }

    /// Parallel CSR build == sequential build, with weights riding along.
    #[test]
    fn parallel_weighted_csr_build_matches_sequential((n, edges, w) in arb_edges()) {
        let seq = Adjacency::from_pairs_with(n, &edges, Some(&w), ParMode::Sequential);
        let par = in_pool(|| Adjacency::from_pairs_with(n, &edges, Some(&w), ParMode::Parallel));
        prop_assert_eq!(seq, par);
    }

    /// Parallel transpose == sequential transpose.
    #[test]
    fn parallel_transpose_matches_sequential((n, edges, w) in arb_edges()) {
        let adj = Adjacency::from_pairs_with(n, &edges, Some(&w), ParMode::Sequential);
        let seq = adj.transpose_with(ParMode::Sequential);
        let par = in_pool(|| adj.transpose_with(ParMode::Parallel));
        prop_assert_eq!(seq, par);
    }

    /// Parallel `apply_graph` == sequential `apply_graph`, directed and
    /// undirected, weighted and not.
    #[test]
    fn parallel_apply_graph_matches_sequential(
        (n, edges, _w) in arb_edges(),
        seed in any::<u64>(),
        directed in any::<bool>(),
        weighted in any::<bool>(),
    ) {
        let mut g = Graph::from_edges(n, &edges, directed);
        if weighted {
            g = g.with_hash_weights(64);
        }
        let perm = random_permutation(n, seed);
        let seq = perm.apply_graph_with(&g, ParMode::Sequential);
        let par = in_pool(|| perm.apply_graph_with(&g, ParMode::Parallel));
        prop_assert_eq!(seq.csr(), par.csr());
        prop_assert_eq!(seq.csc(), par.csc());
        prop_assert_eq!(seq.is_directed(), par.is_directed());
    }

    /// `Auto` mode must agree with the sequential reference regardless of
    /// which path it picks (it picks sequential at these sizes, parallel
    /// inside the pool at forced sizes — either way results are equal).
    #[test]
    fn auto_mode_agrees_with_sequential((n, edges, w) in arb_edges()) {
        let seq = Adjacency::from_pairs_with(n, &edges, Some(&w), ParMode::Sequential);
        let auto = in_pool(|| Adjacency::from_pairs_with(n, &edges, Some(&w), ParMode::Auto));
        prop_assert_eq!(seq, auto);
    }

    /// Parallel in-degree histogram == sequential histogram.
    #[test]
    fn parallel_histogram_matches_sequential((n, edges, _w) in arb_edges(), directed in any::<bool>()) {
        let g = Graph::from_edges(n, &edges, directed);
        let seq = in_degree_histogram_with(&g, ParMode::Sequential);
        let par = in_pool(|| in_degree_histogram_with(&g, ParMode::Parallel));
        prop_assert_eq!(seq, par);
    }

    /// Parallel decreasing-in-degree order is *exactly* the sequential
    /// counting-sort order — same ties-by-ascending-id stability, not
    /// merely a valid reordering.
    #[test]
    fn parallel_degree_order_matches_sequential((n, edges, _w) in arb_edges(), directed in any::<bool>()) {
        let g = Graph::from_edges(n, &edges, directed);
        let seq = vertices_by_decreasing_in_degree_with(&g, ParMode::Sequential);
        let par = in_pool(|| vertices_by_decreasing_in_degree_with(&g, ParMode::Parallel));
        prop_assert_eq!(seq, par);
    }
}

/// The parallel degree ordering at a size past the `Auto` threshold, with
/// a skewed (power-law-ish) degree distribution: identical to sequential.
#[test]
fn parallel_degree_order_large_skewed_graph() {
    let n = 40_000usize;
    let mut x = 11u64;
    let mut next = move || {
        x = mix64(x);
        x
    };
    // Heavy skew: half the edges land on ~16 hub vertices.
    let edges: Vec<(VertexId, VertexId)> = (0..120_000)
        .map(|_| {
            let dst = if next() % 2 == 0 {
                (next() % 16) as VertexId
            } else {
                (next() % n as u64) as VertexId
            };
            ((next() % n as u64) as VertexId, dst)
        })
        .collect();
    let g = Graph::from_edges(n, &edges, true);
    let seq = vertices_by_decreasing_in_degree_with(&g, ParMode::Sequential);
    let hseq = in_degree_histogram_with(&g, ParMode::Sequential);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let auto = pool.install(|| vertices_by_decreasing_in_degree_with(&g, ParMode::Auto));
    let hauto = pool.install(|| in_degree_histogram_with(&g, ParMode::Auto));
    assert_eq!(seq, auto);
    assert_eq!(hseq, hauto);
}

/// One deterministic large-scale check crossing the `Auto` threshold, so
/// the parallel path is exercised with realistic sizes even outside the
/// forced-mode property tests.
#[test]
fn auto_parallelizes_large_graphs_identically() {
    let n = 20_000usize;
    let mut x = 7u64;
    let mut next = move || {
        x = mix64(x);
        x
    };
    let edges: Vec<(VertexId, VertexId)> = (0..100_000)
        .map(|_| {
            (
                (next() % n as u64) as VertexId,
                (next() % n as u64) as VertexId,
            )
        })
        .collect();
    let seq = Adjacency::from_pairs_with(n, &edges, None, ParMode::Sequential);
    let auto = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap()
        .install(|| Adjacency::from_pairs_with(n, &edges, None, ParMode::Auto));
    assert_eq!(seq, auto);
}

/// Regression: with more threads than edges-per-chunk, trailing chunks
/// are empty and their ranges must clamp to `m` instead of panicking
/// (m = 5 with a 4-thread pool used to produce the range 6..5).
#[test]
fn forced_parallel_handles_fewer_edges_than_chunk_capacity() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    for m in 0..12usize {
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|e| ((e % 3) as VertexId, ((e + 1) % 3) as VertexId))
            .collect();
        let seq = Adjacency::from_pairs_with(3, &edges, None, ParMode::Sequential);
        let par = pool.install(|| Adjacency::from_pairs_with(3, &edges, None, ParMode::Parallel));
        assert_eq!(seq, par, "m={m}");
        let tseq = seq.transpose_with(ParMode::Sequential);
        let tpar = pool.install(|| seq.transpose_with(ParMode::Parallel));
        assert_eq!(tseq, tpar, "transpose m={m}");
    }
}
