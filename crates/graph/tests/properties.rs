//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use vebo_graph::graph::mix64;
use vebo_graph::{io, Adjacency, Graph, Permutation, VertexId};

fn arb_edges() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>)> {
    (2usize..60, 0usize..300, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut x = seed;
        let mut next = || {
            x = mix64(x);
            x
        };
        let edges = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as VertexId,
                    (next() % n as u64) as VertexId,
                )
            })
            .collect();
        (n, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transpose is an involution on arbitrary adjacency structures.
    #[test]
    fn transpose_involution((n, edges) in arb_edges()) {
        let a = Adjacency::from_pairs(n, &edges);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// CSR offsets are consistent with degrees for any input.
    #[test]
    fn offsets_match_degrees((n, edges) in arb_edges()) {
        let a = Adjacency::from_pairs(n, &edges);
        for v in 0..n as VertexId {
            prop_assert_eq!(a.degree(v), a.neighbors(v).len());
        }
        prop_assert_eq!(a.num_edges(), edges.len());
    }

    /// Graph in/out views agree on the edge multiset.
    #[test]
    fn csr_csc_same_multiset((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges, true);
        let mut fwd: Vec<(VertexId, VertexId)> = g
            .vertices()
            .flat_map(|u| g.out_neighbors(u).iter().map(move |&v| (u, v)))
            .collect();
        let mut bwd: Vec<(VertexId, VertexId)> = g
            .vertices()
            .flat_map(|v| g.in_neighbors(v).iter().map(move |&u| (u, v)))
            .collect();
        fwd.sort_unstable();
        bwd.sort_unstable();
        prop_assert_eq!(fwd, bwd);
    }

    /// Applying a permutation then its inverse restores the graph.
    #[test]
    fn permutation_roundtrip((n, edges) in arb_edges(), seed in any::<u64>()) {
        let g = Graph::from_edges(n, &edges, true);
        let perm = vebo_graph::gen::random_permutation(n, seed);
        let there = perm.apply_graph(&g);
        let back = perm.inverse().apply_graph(&there);
        prop_assert_eq!(back.csr().offsets(), g.csr().offsets());
        prop_assert_eq!(back.csr().targets(), g.csr().targets());
    }

    /// Composition of permutations equals sequential application.
    #[test]
    fn permutation_composition((n, edges) in arb_edges(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let g = Graph::from_edges(n, &edges, true);
        let p = vebo_graph::gen::random_permutation(n, s1);
        let q = vebo_graph::gen::random_permutation(n, s2);
        let combined = p.then(&q).apply_graph(&g);
        let sequential = q.apply_graph(&p.apply_graph(&g));
        prop_assert_eq!(combined.csr().targets(), sequential.csr().targets());
        prop_assert_eq!(combined.csr().offsets(), sequential.csr().offsets());
    }

    /// Edge-list I/O roundtrips any graph.
    #[test]
    fn edge_list_roundtrip((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges, true);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let h = io::read_edge_list(&buf[..], true, Some(n)).unwrap();
        prop_assert_eq!(g.csr().offsets(), h.csr().offsets());
        prop_assert_eq!(g.csr().targets(), h.csr().targets());
    }

    /// Adjacency-graph I/O roundtrips any graph.
    #[test]
    fn adjacency_graph_roundtrip((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges, true);
        let mut buf = Vec::new();
        io::write_adjacency_graph(&g, &mut buf).unwrap();
        let h = io::read_adjacency_graph(&buf[..], true).unwrap();
        prop_assert_eq!(g.csr().offsets(), h.csr().offsets());
        prop_assert_eq!(g.csr().targets(), h.csr().targets());
    }

    /// Undirected construction is always symmetric and loop-stable.
    #[test]
    fn undirected_symmetry((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges, false);
        for v in g.vertices() {
            prop_assert_eq!(g.out_neighbors(v), g.in_neighbors(v));
        }
    }

    /// `Permutation::from_order` and `from_new_ids` are inverse views.
    #[test]
    fn order_and_ids_are_inverse_views(n in 1usize..80, seed in any::<u64>()) {
        let p = vebo_graph::gen::random_permutation(n, seed);
        let inv = p.inverse();
        let order: Vec<VertexId> = (0..n as VertexId).map(|r| inv.new_id(r)).collect();
        let q = Permutation::from_order(&order).unwrap();
        prop_assert_eq!(p.as_slice(), q.as_slice());
    }
}
