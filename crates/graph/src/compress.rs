//! Delta + varint compressed neighbor lists: the byte-packed companion
//! representation behind [`StorageKind::Compressed`].
//!
//! VEBO's locality-aware orderings cluster neighbor ids, so the gaps
//! between consecutive targets of one vertex are small — and small gaps
//! byte-pack well. [`CompressedCsr`] stores each vertex's sorted neighbor
//! list as
//!
//! * a **zigzag varint** of `t0 - v` for the first target (signed: the
//!   first neighbor may precede the vertex id, and post-reordering it is
//!   usually *near* it), followed by
//! * a plain **varint** of `t_i - t_{i-1}` for every subsequent target
//!   (non-negative because lists are sorted; zero for parallel edges).
//!
//! A `byte_offsets` array (one `usize` per vertex plus a sentinel, the
//! same shape as the CSR offsets) gives random access into the byte
//! stream, so traversal kernels can start decoding at any vertex.
//!
//! The compressed form is a *companion* to the plain CSR arrays, not a
//! replacement: an [`crate::Adjacency`] carrying one still exposes its
//! `neighbors()` slices, and only the engine's hot loops switch to
//! decoding. The working-set win is that those loops touch
//! `data` (≈1–2 bytes/edge after a good ordering) instead of `targets`
//! (4 bytes/edge); see [`CompressionStats`].
//!
//! Decoding in the kernels goes through [`NeighborDecoder`], which fills
//! a small stack buffer ([`DECODE_BLOCK`] targets) per call so the scan
//! over each block is a plain slice loop the compiler can unroll and
//! vectorize.

use crate::storage::{GraphStorage, StorageKind};
use crate::types::{GraphError, VertexId};

/// Targets decoded per [`NeighborDecoder::next_block`] call — sized so
/// the block buffer lives in registers/L1 and the per-block scan loop
/// is worth vectorizing.
pub const DECODE_BLOCK: usize = 16;

/// Byte-packed neighbor lists for one adjacency direction.
///
/// Both sections sit behind [`GraphStorage`], so a `.vgr` v3 file can be
/// memory-mapped and decoded in place: `byte_offsets` and `data` are
/// borrowed zero-copy, and only the plain `targets` array (which the
/// rest of the workspace still reads) is materialized.
#[derive(Clone, Debug)]
pub struct CompressedCsr {
    /// Positions into `data`: vertex `v`'s encoded list occupies
    /// `data[byte_offsets[v]..byte_offsets[v + 1]]`. Length `n + 1`.
    byte_offsets: GraphStorage<usize>,
    /// The concatenated varint streams.
    data: GraphStorage<u8>,
}

/// Compressed-vs-raw accounting for one adjacency direction: the bytes
/// the traversal kernels stream through per full edge scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressionStats {
    /// Bytes of the plain target array (`m * 4`).
    pub raw_bytes: usize,
    /// Bytes of the varint stream.
    pub compressed_bytes: usize,
}

impl CompressionStats {
    /// Raw-to-compressed ratio; > 1.0 means the encoding won. Reported
    /// as 1.0 for empty graphs (nothing to compress either way).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

#[inline]
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decodes one varint starting at `*pos`. The caller guarantees the
/// stream is well-formed (encoder output or a validated load), so this
/// indexes the slice directly — a corrupt stream panics rather than
/// reading out of bounds.
#[inline]
fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let b = data[*pos];
        *pos += 1;
        out |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return out;
        }
        shift += 7;
    }
}

fn corrupt(message: String) -> GraphError {
    GraphError::Parse { line: 0, message }
}

impl CompressedCsr {
    /// Encodes plain CSR arrays. `offsets` has length `n + 1`; each
    /// neighbor list `targets[offsets[v]..offsets[v + 1]]` must be
    /// sorted ascending (the [`crate::Adjacency`] invariant).
    pub fn from_csr(offsets: &[usize], targets: &[VertexId]) -> CompressedCsr {
        let n = offsets.len().saturating_sub(1);
        let mut byte_offsets = Vec::with_capacity(n + 1);
        // Post-VEBO gaps are mostly 1-byte varints; 1.5 bytes/edge is a
        // comfortable first guess that avoids most regrowth.
        let mut data = Vec::with_capacity(targets.len() + targets.len() / 2);
        for v in 0..n {
            byte_offsets.push(data.len());
            let list = &targets[offsets[v]..offsets[v + 1]];
            let mut prev = v as i64;
            for (k, &t) in list.iter().enumerate() {
                if k == 0 {
                    push_varint(&mut data, zigzag(t as i64 - prev));
                } else {
                    push_varint(&mut data, (t as i64 - prev) as u64);
                }
                prev = t as i64;
            }
        }
        byte_offsets.push(data.len());
        CompressedCsr {
            byte_offsets: byte_offsets.into(),
            data: data.into(),
        }
    }

    /// Wraps already-validated sections (the `.vgr` v3 loader hands in
    /// mapped views here *after* [`CompressedCsr::decode_to_targets`]
    /// proved them well-formed against the element offsets).
    pub fn from_storage(
        byte_offsets: GraphStorage<usize>,
        data: GraphStorage<u8>,
    ) -> Result<CompressedCsr, GraphError> {
        let bo = byte_offsets.as_slice();
        if bo.is_empty() {
            return Err(corrupt("compressed byte offsets are empty".into()));
        }
        for i in 1..bo.len() {
            if bo[i] < bo[i - 1] {
                return Err(corrupt(format!(
                    "compressed byte offsets decrease at index {i}"
                )));
            }
        }
        if *bo.last().unwrap() != data.len() {
            return Err(corrupt(format!(
                "compressed byte offsets end at {} but data holds {} bytes",
                bo.last().unwrap(),
                data.len()
            )));
        }
        Ok(CompressedCsr { byte_offsets, data })
    }

    /// The per-vertex byte positions (length `n + 1`).
    #[inline]
    pub fn byte_offsets(&self) -> &[usize] {
        self.byte_offsets.as_slice()
    }

    /// The varint byte stream.
    #[inline]
    pub fn data(&self) -> &[u8] {
        self.data.as_slice()
    }

    /// Number of vertices covered.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.byte_offsets.len() - 1
    }

    /// Backing kind of the sections ([`StorageKind::Mapped`] when either
    /// borrows a mapped `.vgr` v3 file).
    pub fn section_kind(&self) -> StorageKind {
        if self.byte_offsets.kind() == StorageKind::Mapped
            || self.data.kind() == StorageKind::Mapped
        {
            StorageKind::Mapped
        } else {
            StorageKind::Owned
        }
    }

    /// Compressed-vs-raw byte accounting against a plain target array of
    /// `num_edges` entries.
    pub fn stats(&self, num_edges: usize) -> CompressionStats {
        CompressionStats {
            raw_bytes: num_edges * std::mem::size_of::<VertexId>(),
            compressed_bytes: self.data.len(),
        }
    }

    /// Fully decodes the stream into a flat target array, validating it
    /// against the element `offsets` (same length as `byte_offsets`):
    /// every vertex must decode exactly its degree, within `0..n`, in
    /// nondecreasing order. This is the `.vgr` v3 load path — the
    /// returned vector becomes the graph's owned `targets` section.
    pub fn decode_to_targets(&self, offsets: &[usize]) -> Result<Vec<VertexId>, GraphError> {
        let bo = self.byte_offsets.as_slice();
        let data = self.data.as_slice();
        if offsets.len() != bo.len() {
            return Err(corrupt(format!(
                "compressed byte offsets cover {} vertices but offsets cover {}",
                bo.len().saturating_sub(1),
                offsets.len().saturating_sub(1)
            )));
        }
        let n = bo.len() - 1;
        let m = *offsets.last().unwrap_or(&0);
        let mut out: Vec<VertexId> = Vec::with_capacity(m);
        for v in 0..n {
            let degree = offsets[v + 1] - offsets[v];
            let mut pos = bo[v];
            let end = bo[v + 1];
            let mut prev = v as i64;
            for k in 0..degree {
                let raw = checked_varint(data, &mut pos, end, v)?;
                let t = if k == 0 {
                    prev + unzigzag(raw)
                } else {
                    prev.checked_add(i64::try_from(raw).map_err(|_| delta_overflow(v))?)
                        .ok_or_else(|| delta_overflow(v))?
                };
                if t < 0 || t as u64 >= n as u64 {
                    return Err(corrupt(format!(
                        "decoded target {t} out of range for {n} vertices (vertex {v})"
                    )));
                }
                out.push(t as VertexId);
                prev = t;
            }
            if pos != end {
                return Err(corrupt(format!(
                    "vertex {v}: {} compressed bytes left after decoding its degree",
                    end - pos
                )));
            }
        }
        Ok(out)
    }
}

fn delta_overflow(v: usize) -> GraphError {
    corrupt(format!("compressed delta overflows at vertex {v}"))
}

/// Bounds- and width-checked varint read for the validated decode path.
fn checked_varint(data: &[u8], pos: &mut usize, end: usize, v: usize) -> Result<u64, GraphError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if *pos >= end || *pos >= data.len() {
            return Err(corrupt(format!(
                "compressed stream for vertex {v} ends mid-varint"
            )));
        }
        if shift >= 64 {
            return Err(corrupt(format!("varint for vertex {v} exceeds 64 bits")));
        }
        let b = data[*pos];
        *pos += 1;
        out |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

/// Streaming block decoder over one vertex's compressed neighbor list.
///
/// [`NeighborDecoder::next_block`] fills up to [`DECODE_BLOCK`] targets
/// into a caller-provided stack buffer and returns how many it produced
/// (`0` when the list is exhausted), so the traversal kernels scan each
/// block as a plain slice — the same inner-loop shape the plain-CSR path
/// uses, which keeps the two backings bit-identical in update order.
pub struct NeighborDecoder<'a> {
    data: &'a [u8],
    pos: usize,
    end: usize,
    prev: i64,
    first: bool,
}

impl<'a> NeighborDecoder<'a> {
    /// Positions the decoder at the start of `v`'s encoded list.
    #[inline]
    pub fn new(c: &'a CompressedCsr, v: usize) -> NeighborDecoder<'a> {
        let bo = c.byte_offsets();
        NeighborDecoder {
            data: c.data(),
            pos: bo[v],
            end: bo[v + 1],
            prev: v as i64,
            first: true,
        }
    }

    /// Decodes the next block of targets; returns the count written into
    /// `buf[..count]`.
    #[inline]
    pub fn next_block(&mut self, buf: &mut [VertexId; DECODE_BLOCK]) -> usize {
        let mut k = 0;
        while k < DECODE_BLOCK && self.pos < self.end {
            let raw = read_varint(self.data, &mut self.pos);
            let t = if self.first {
                self.first = false;
                self.prev + unzigzag(raw)
            } else {
                self.prev + raw as i64
            };
            self.prev = t;
            buf[k] = t as VertexId;
            k += 1;
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_vertex(c: &CompressedCsr, v: usize) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut dec = NeighborDecoder::new(c, v);
        let mut buf = [0 as VertexId; DECODE_BLOCK];
        loop {
            let k = dec.next_block(&mut buf);
            if k == 0 {
                break;
            }
            out.extend_from_slice(&buf[..k]);
        }
        out
    }

    #[test]
    fn zigzag_roundtrips() {
        for d in [
            0i64,
            1,
            -1,
            63,
            -64,
            1 << 30,
            -(1 << 30),
            i64::from(u32::MAX),
        ] {
            assert_eq!(unzigzag(zigzag(d)), d, "{d}");
        }
    }

    #[test]
    fn varint_roundtrips() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            1 << 14,
            (1 << 21) - 1,
            u64::from(u32::MAX),
        ];
        let mut buf = Vec::new();
        for &v in &values {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn encode_decode_roundtrips_small_csr() {
        // 0 -> {1, 2}, 1 -> {0}, 2 -> {}, 3 -> {0, 3, 3} (self loop +
        // parallel edge: zero deltas must survive).
        let offsets = [0usize, 2, 3, 3, 6];
        let targets: Vec<VertexId> = vec![1, 2, 0, 0, 3, 3];
        let c = CompressedCsr::from_csr(&offsets, &targets);
        assert_eq!(decode_vertex(&c, 0), &[1, 2]);
        assert_eq!(decode_vertex(&c, 1), &[0]);
        assert_eq!(decode_vertex(&c, 2), &[] as &[VertexId]);
        assert_eq!(decode_vertex(&c, 3), &[0, 3, 3]);
        assert_eq!(c.decode_to_targets(&offsets).unwrap(), targets);
    }

    #[test]
    fn block_decoder_crosses_block_boundaries() {
        // One vertex with 40 neighbors: 3 blocks of 16/16/8.
        let n = 64usize;
        let targets: Vec<VertexId> = (0..40u32).map(|i| i + 3).collect();
        let offsets = {
            let mut o = vec![0usize; n + 1];
            for e in o.iter_mut().skip(1) {
                *e = 40;
            }
            o
        };
        let c = CompressedCsr::from_csr(&offsets, &targets);
        assert_eq!(decode_vertex(&c, 0), targets);
        assert_eq!(c.decode_to_targets(&offsets).unwrap(), targets);
    }

    #[test]
    fn locality_compresses_below_raw_size() {
        // Consecutive neighbors: every delta is 1 → one byte per edge.
        let n = 1000usize;
        let mut offsets = vec![0usize];
        let mut targets = Vec::new();
        for v in 0..n {
            for t in 0..8u32 {
                targets.push(((v as u32) + t) % n as u32);
            }
            offsets.push(targets.len());
        }
        // Lists must be sorted for the encoding invariant.
        for v in 0..n {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        let c = CompressedCsr::from_csr(&offsets, &targets);
        let stats = c.stats(targets.len());
        assert_eq!(stats.raw_bytes, targets.len() * 4);
        assert!(stats.compressed_bytes < stats.raw_bytes);
        assert!(stats.ratio() > 1.0);
        assert_eq!(c.decode_to_targets(&offsets).unwrap(), targets);
    }

    #[test]
    fn first_target_below_vertex_id_uses_signed_delta() {
        // Vertex 500 pointing back at 0 exercises the negative zigzag.
        let mut offsets = vec![0usize; 501];
        offsets.extend([1usize; 1]);
        let targets = vec![0 as VertexId];
        let c = CompressedCsr::from_csr(&offsets, &targets);
        assert_eq!(decode_vertex(&c, 500), &[0]);
    }

    #[test]
    fn empty_adjacency_encodes_cleanly() {
        let c = CompressedCsr::from_csr(&[0], &[]);
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.data().len(), 0);
        assert_eq!(c.stats(0).ratio(), 1.0);
        assert_eq!(c.decode_to_targets(&[0]).unwrap(), Vec::<VertexId>::new());
    }

    #[test]
    fn decode_rejects_out_of_range_targets() {
        // Encode a 4-vertex CSR, then decode claiming only 2 vertices
        // worth of range: targets 2..4 become out of range.
        let offsets = [0usize, 1, 2, 3, 4];
        let targets: Vec<VertexId> = vec![3, 2, 1, 0];
        let c = CompressedCsr::from_csr(&offsets, &targets);
        let bo: Vec<usize> = c.byte_offsets().to_vec();
        let truncated_bo: Vec<usize> = bo[..3].to_vec();
        let data: Vec<u8> = c.data()[..truncated_bo[2]].to_vec();
        let c2 = CompressedCsr::from_storage(truncated_bo.into(), data.into()).unwrap();
        assert!(c2.decode_to_targets(&[0, 1, 2]).is_err());
    }

    #[test]
    fn decode_rejects_degree_mismatch() {
        let offsets = [0usize, 2, 3];
        let targets: Vec<VertexId> = vec![0, 1, 2];
        let c = CompressedCsr::from_csr(&offsets, &targets);
        // Claim vertex 0 has degree 1: a leftover byte must be reported.
        assert!(c.decode_to_targets(&[0, 1, 3]).is_err());
        // Claim vertex 0 has degree 3: the stream ends mid-list.
        assert!(c.decode_to_targets(&[0, 3, 4]).is_err());
    }

    #[test]
    fn from_storage_validates_byte_offsets() {
        assert!(
            CompressedCsr::from_storage(vec![0usize, 2, 1].into(), vec![0u8; 2].into()).is_err()
        );
        assert!(CompressedCsr::from_storage(vec![0usize, 1].into(), vec![0u8; 2].into()).is_err());
        assert!(CompressedCsr::from_storage(Vec::<usize>::new().into(), vec![].into()).is_err());
        assert!(CompressedCsr::from_storage(vec![0usize, 2].into(), vec![2u8, 0].into()).is_ok());
    }

    #[test]
    fn parallel_edges_decode_as_zero_deltas() {
        let offsets = [0usize, 4];
        let targets: Vec<VertexId> = vec![5, 5, 5, 9];
        let c = CompressedCsr::from_csr(&offsets, &targets);
        assert_eq!(decode_vertex(&c, 0), targets);
    }
}
