//! Order-sensitive FNV-1a digests — the stable, dependency-free hash
//! every conformance suite in the workspace reduces results to.
//!
//! Lives at the bottom of the crate graph so the serving harness
//! (`vebo-bench`), the network frontend (`vebo-serve-net`), and the
//! cluster runtime (`vebo-distributed`) all digest through the **same**
//! function — "bit-identical digest" claims across processes are only
//! meaningful if every process hashes identically.

/// FNV-1a, 64 bit — tiny, dependency-free, stable across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Order-sensitive FNV-1a digest over a `u64` stream — the digest every
/// response reduces to, exported so network clients and cluster workers
/// can recompute the digests the in-process harness prints.
pub fn digest_u64s(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Fnv::new();
    for v in values {
        h.write_u64(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        assert_ne!(digest_u64s([1, 2]), digest_u64s([2, 1]));
        assert_ne!(digest_u64s([0]), digest_u64s([]));
        // The FNV-1a offset basis: hashing nothing yields it unchanged.
        assert_eq!(digest_u64s([]), 0xcbf2_9ce4_8422_2325);
    }
}
