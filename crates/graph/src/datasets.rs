//! Registry of the eight evaluation datasets (Table I analogues).
//!
//! The paper's graphs range up to 1.8B edges; these are scaled-down
//! synthetic analogues whose degree-distribution *shape* (skew, zero-degree
//! fractions, directedness, near-constant degree for the road network)
//! matches the original. The `scale` parameter multiplies vertex counts so
//! harnesses can trade fidelity for runtime.

use crate::gen::grid::{grid_graph, GridConfig};
use crate::gen::powerlaw::{
    chung_lu_undirected, zipf_directed, zipf_undirected, ChungLuConfig, ZipfGraphConfig,
    ZipfUndirectedConfig,
};
use crate::gen::rmat::{rmat_graph, RmatConfig};
use crate::graph::Graph;

/// The eight datasets of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Twitter follower graph analogue: directed, heavy skew, huge hubs.
    TwitterLike,
    /// Friendster analogue: directed, moderate max degree, ~half the
    /// vertices without in-edges.
    FriendsterLike,
    /// Orkut analogue: undirected, dense power-law.
    OrkutLike,
    /// LiveJournal analogue: directed power-law.
    LiveJournalLike,
    /// Yahoo memory graph analogue: undirected, smaller power-law.
    YahooLike,
    /// USA road network analogue: undirected mesh, max degree <= 8.
    UsaRoadLike,
    /// The paper's synthetic power-law graph (alpha = 2).
    PowerLaw,
    /// RMAT27 analogue: directed R-MAT with Graph500 parameters.
    Rmat27Like,
}

impl Dataset {
    /// All datasets in the paper's table order.
    pub const ALL: [Dataset; 8] = [
        Dataset::TwitterLike,
        Dataset::FriendsterLike,
        Dataset::OrkutLike,
        Dataset::LiveJournalLike,
        Dataset::YahooLike,
        Dataset::UsaRoadLike,
        Dataset::PowerLaw,
        Dataset::Rmat27Like,
    ];

    /// The power-law subset (every dataset except the road network), which
    /// is the family the paper's theorems target.
    pub const POWER_LAW: [Dataset; 7] = [
        Dataset::TwitterLike,
        Dataset::FriendsterLike,
        Dataset::OrkutLike,
        Dataset::LiveJournalLike,
        Dataset::YahooLike,
        Dataset::PowerLaw,
        Dataset::Rmat27Like,
    ];

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::TwitterLike => "twitter",
            Dataset::FriendsterLike => "friendster",
            Dataset::OrkutLike => "orkut",
            Dataset::LiveJournalLike => "livejournal",
            Dataset::YahooLike => "yahoo_mem",
            Dataset::UsaRoadLike => "usaroad",
            Dataset::PowerLaw => "powerlaw",
            Dataset::Rmat27Like => "rmat27",
        }
    }

    /// Parses a dataset name as printed by [`Dataset::name`].
    pub fn from_name(name: &str) -> Option<Dataset> {
        Dataset::ALL.iter().copied().find(|d| d.name() == name)
    }

    /// The specification (directedness + generator parameters at scale 1).
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::TwitterLike => DatasetSpec {
                dataset: self,
                directed: true,
                base_vertices: 30_000,
                paper_vertices: 41_700_000,
                paper_edges: 1_467_000_000,
            },
            Dataset::FriendsterLike => DatasetSpec {
                dataset: self,
                directed: true,
                base_vertices: 80_000,
                paper_vertices: 125_000_000,
                paper_edges: 1_810_000_000,
            },
            Dataset::OrkutLike => DatasetSpec {
                dataset: self,
                directed: false,
                base_vertices: 12_000,
                paper_vertices: 3_070_000,
                paper_edges: 234_000_000,
            },
            Dataset::LiveJournalLike => DatasetSpec {
                dataset: self,
                directed: true,
                base_vertices: 50_000,
                paper_vertices: 4_850_000,
                paper_edges: 69_000_000,
            },
            Dataset::YahooLike => DatasetSpec {
                dataset: self,
                directed: false,
                base_vertices: 10_000,
                paper_vertices: 1_640_000,
                paper_edges: 30_400_000,
            },
            Dataset::UsaRoadLike => DatasetSpec {
                dataset: self,
                directed: false,
                base_vertices: 32_400, // 180 x 180 grid
                paper_vertices: 23_900_000,
                paper_edges: 58_000_000,
            },
            Dataset::PowerLaw => DatasetSpec {
                dataset: self,
                directed: false,
                base_vertices: 60_000,
                paper_vertices: 100_000_000,
                paper_edges: 294_000_000,
            },
            Dataset::Rmat27Like => DatasetSpec {
                dataset: self,
                directed: true,
                base_vertices: 1 << 16,
                paper_vertices: 134_000_000,
                paper_edges: 1_342_000_000,
            },
        }
    }

    /// Builds the dataset at the given scale (`1.0` = default size; tests
    /// typically use `0.05`–`0.2`).
    pub fn build(self, scale: f64) -> Graph {
        self.spec().build(scale)
    }
}

/// Static description of a dataset analogue.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Which dataset this spec describes.
    pub dataset: Dataset,
    /// Whether the analogue is directed (Table I's "Type" column).
    pub directed: bool,
    /// Vertex count at scale 1.0.
    pub base_vertices: usize,
    /// The original graph's vertex count (for documentation).
    pub paper_vertices: usize,
    /// The original graph's edge count (for documentation).
    pub paper_edges: usize,
}

impl DatasetSpec {
    /// Generates the graph at the given scale factor.
    pub fn build(&self, scale: f64) -> Graph {
        assert!(scale > 0.0, "scale must be positive");
        let n = ((self.base_vertices as f64 * scale) as usize).max(64);
        match self.dataset {
            // N = n/40 keeps |E| / N ~ 1200 (paper's Twitter: ~1900), so
            // the Theorem 1 precondition holds at P = 384 once n > 15k.
            Dataset::TwitterLike => zipf_directed(&ZipfGraphConfig {
                num_vertices: n,
                num_ranks: (n / 40).clamp(16, 4000),
                s: 1.35,
                out_skew: 2.5,
                zero_out_fraction: 0.04,
                shuffle_ids: true,
                seed: 0x7717,
            }),
            Dataset::FriendsterLike => zipf_directed(&ZipfGraphConfig {
                num_vertices: n,
                num_ranks: (n / 150).clamp(16, 600),
                s: 1.6,
                out_skew: 1.5,
                zero_out_fraction: 0.37,
                shuffle_ids: true,
                seed: 0xF51E,
            }),
            // Configuration model with min degree 1: real Orkut spans
            // degree 1 up to 33k, and Theorem 1 relies on abundant
            // degree-1 vertices.
            Dataset::OrkutLike => zipf_undirected(&ZipfUndirectedConfig {
                num_vertices: n,
                num_ranks: (n / 8).clamp(16, 2000),
                s: 1.35,
                shuffle_ids: true,
                seed: 0x0127,
            }),
            Dataset::LiveJournalLike => zipf_directed(&ZipfGraphConfig {
                num_vertices: n,
                num_ranks: (n / 60).clamp(16, 1000),
                s: 1.55,
                out_skew: 2.0,
                zero_out_fraction: 0.21,
                shuffle_ids: true,
                seed: 0x11BE,
            }),
            Dataset::YahooLike => zipf_undirected(&ZipfUndirectedConfig {
                num_vertices: n,
                num_ranks: (n / 12).clamp(16, 1200),
                s: 1.5,
                shuffle_ids: true,
                seed: 0x5A00,
            }),
            Dataset::UsaRoadLike => {
                let side = (n as f64).sqrt().ceil() as usize;
                grid_graph(&GridConfig {
                    width: side,
                    height: side,
                    diagonal_prob: 0.08,
                    deletion_prob: 0.05,
                    seed: 0x05A1,
                })
            }
            Dataset::PowerLaw => chung_lu_undirected(&ChungLuConfig {
                num_vertices: n,
                num_edges: (n as f64 * 1.5) as usize, // paper: m/n ~ 2.9 arcs
                alpha: 2.0,
                shuffle_ids: true,
                seed: 0x7012,
            }),
            Dataset::Rmat27Like => {
                let scale_bits = (n as f64).log2().round().max(6.0) as u32;
                rmat_graph(&RmatConfig {
                    scale: scale_bits,
                    edge_factor: 10,
                    a: 0.57,
                    b: 0.19,
                    c: 0.19,
                    dedup: true,
                    shuffle_ids: true,
                    seed: 0x27,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::characterize;

    #[test]
    fn all_datasets_build_at_small_scale() {
        for d in Dataset::ALL {
            let g = d.build(0.05);
            assert!(g.num_vertices() >= 64, "{} too small", d.name());
            assert!(g.num_edges() > 0, "{} has no edges", d.name());
            assert_eq!(g.is_directed(), d.spec().directed, "{}", d.name());
        }
    }

    #[test]
    fn names_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::from_name(d.name()), Some(d));
        }
        assert_eq!(Dataset::from_name("nope"), None);
    }

    #[test]
    fn usaroad_has_near_constant_degree() {
        let g = Dataset::UsaRoadLike.build(0.2);
        let c = characterize(&g);
        assert!(c.max_in_degree <= 9, "max degree {}", c.max_in_degree);
    }

    #[test]
    fn power_law_datasets_are_skewed() {
        for d in [Dataset::TwitterLike, Dataset::Rmat27Like, Dataset::PowerLaw] {
            let g = d.build(0.2);
            let c = characterize(&g);
            let mean = c.edges as f64 / c.vertices as f64;
            assert!(
                c.max_in_degree as f64 > 8.0 * mean,
                "{}: max {} mean {mean}",
                d.name(),
                c.max_in_degree
            );
        }
    }

    #[test]
    fn directed_power_law_has_zero_in_degree_vertices() {
        // Table I: directed scale-free graphs have substantial zero
        // in-degree fractions (14%-69%).
        for d in [
            Dataset::TwitterLike,
            Dataset::FriendsterLike,
            Dataset::Rmat27Like,
        ] {
            let g = d.build(0.1);
            let c = characterize(&g);
            assert!(c.pct_zero_in() > 5.0, "{}: {}", d.name(), c.pct_zero_in());
        }
    }

    #[test]
    fn scale_changes_size() {
        let small = Dataset::TwitterLike.build(0.05);
        let large = Dataset::TwitterLike.build(0.2);
        assert!(large.num_vertices() > 2 * small.num_vertices());
    }

    #[test]
    fn builds_are_deterministic() {
        let a = Dataset::LiveJournalLike.build(0.05);
        let b = Dataset::LiveJournalLike.build(0.05);
        assert_eq!(a.csr().targets(), b.csr().targets());
    }
}
