//! The [`Graph`] type: paired CSR (out) / CSC (in) adjacency.

use crate::adjacency::Adjacency;
use crate::types::{GraphError, VertexId};

/// A directed graph stored in both directions.
///
/// * `out` — CSR indexed by source: `out.neighbors(u)` are the destinations
///   of `u`'s out-edges.
/// * `into` — CSC indexed by destination: `into.neighbors(v)` are the
///   sources of `v`'s in-edges.
///
/// Undirected graphs are symmetrized on construction (each undirected edge
/// becomes two arcs), after which `out` and `into` hold identical data. All
/// edge counts in this workspace refer to *stored arcs*, matching how the
/// paper counts edges for its undirected datasets (Orkut, Yahoo, USAroad).
#[derive(Clone, Debug)]
pub struct Graph {
    out: Adjacency,
    into: Adjacency,
    directed: bool,
}

impl Graph {
    /// Builds a graph from an edge list.
    ///
    /// For `directed == false` the list is symmetrized: for every `(u, v)`
    /// with `u != v`, the arc `(v, u)` is added as well (duplicates that
    /// would result from the input already containing both directions are
    /// collapsed).
    pub fn from_edges(
        num_vertices: usize,
        edges: &[(VertexId, VertexId)],
        directed: bool,
    ) -> Graph {
        Self::from_edges_weighted(num_vertices, edges, None, directed)
    }

    /// As [`Graph::from_edges`], with one weight per input edge. For
    /// undirected graphs the weight is mirrored onto both arcs.
    pub fn from_edges_weighted(
        num_vertices: usize,
        edges: &[(VertexId, VertexId)],
        weights: Option<&[f32]>,
        directed: bool,
    ) -> Graph {
        for &(u, v) in edges {
            assert!(
                (u as usize) < num_vertices && (v as usize) < num_vertices,
                "edge ({u}, {v}) out of range for n = {num_vertices}"
            );
        }
        if directed {
            let out = Adjacency::from_pairs_weighted(num_vertices, edges, weights);
            let into = out.transpose();
            Graph {
                out,
                into,
                directed,
            }
        } else {
            // Symmetrize, de-duplicating mirrored pairs so that an input
            // containing both (u,v) and (v,u) yields exactly two arcs.
            let mut seen: std::collections::HashSet<(VertexId, VertexId)> =
                std::collections::HashSet::with_capacity(edges.len());
            let mut sym: Vec<(VertexId, VertexId)> = Vec::with_capacity(edges.len() * 2);
            let mut wsym: Vec<f32> = Vec::with_capacity(edges.len() * 2);
            for (i, &(u, v)) in edges.iter().enumerate() {
                let key = (u.min(v), u.max(v));
                if u != v && !seen.insert(key) {
                    continue;
                }
                let w = weights.map(|w| w[i]).unwrap_or(1.0);
                sym.push((u, v));
                wsym.push(w);
                if u != v {
                    sym.push((v, u));
                    wsym.push(w);
                }
            }
            let w = weights.map(|_| wsym.as_slice());
            let out = Adjacency::from_pairs_weighted(num_vertices, &sym, w);
            let into = out.clone();
            Graph {
                out,
                into,
                directed,
            }
        }
    }

    /// Assembles a graph from prebuilt adjacency halves. `into` must be the
    /// transpose of `out`; this is checked in debug builds.
    pub fn from_parts(
        out: Adjacency,
        into: Adjacency,
        directed: bool,
    ) -> Result<Graph, GraphError> {
        if out.num_vertices() != into.num_vertices() {
            return Err(GraphError::InvalidPermutation {
                reason: "out/in vertex count mismatch",
            });
        }
        if out.num_edges() != into.num_edges() {
            return Err(GraphError::OffsetsEdgeMismatch {
                last_offset: out.num_edges(),
                num_edges: into.num_edges(),
            });
        }
        debug_assert_eq!(
            out.transpose(),
            into,
            "`into` must be the transpose of `out`"
        );
        Ok(Graph {
            out,
            into,
            directed,
        })
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of stored arcs `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// Whether the graph was built as directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-adjacency (CSR).
    #[inline]
    pub fn csr(&self) -> &Adjacency {
        &self.out
    }

    /// In-adjacency (CSC).
    #[inline]
    pub fn csc(&self) -> &Adjacency {
        &self.into
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out.degree(u)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.into.degree(v)
    }

    /// Destinations of `u`'s out-edges.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        self.out.neighbors(u)
    }

    /// Sources of `v`'s in-edges.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.into.neighbors(v)
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Attaches deterministic pseudo-random integer weights in `1..=max` to
    /// both adjacency halves, keyed by the (source, destination) pair so the
    /// CSR and CSC views agree. Used by weighted algorithms (BF, BP) since
    /// the paper's datasets are unweighted.
    pub fn with_hash_weights(self, max: u32) -> Graph {
        assert!(max >= 1);
        let h = move |u: VertexId, v: VertexId| {
            (mix64(((u as u64) << 32) | v as u64) % max as u64 + 1) as f32
        };
        let out = self.out.with_weights(h);
        let into = self.into.with_weights(|v, u| h(u, v)); // CSC stores (dst, src)
        Graph {
            out,
            into,
            directed: self.directed,
        }
    }

    /// Whether per-edge weights are attached.
    #[inline]
    pub fn has_weights(&self) -> bool {
        self.out.has_weights()
    }

    /// The CSR's storage backing:
    /// [`Mapped`](crate::storage::StorageKind::Mapped) when the graph was
    /// loaded zero-copy from a memory-mapped `.vgr` file. The CSC half is
    /// always rebuilt into owned storage on load, so the CSR is what
    /// determines whether the graph borrows a mapping.
    #[inline]
    pub fn storage_kind(&self) -> crate::storage::StorageKind {
        self.out.storage_kind()
    }

    /// Attaches delta/varint compressed companions to both adjacency
    /// halves (see [`crate::compress::CompressedCsr`]): the engine's
    /// traversal kernels then decode byte-packed neighbor lists instead
    /// of streaming the 4-byte target arrays. A no-op on halves that
    /// already carry a companion (e.g. a graph loaded from a `.vgr` v3
    /// file).
    pub fn with_compressed(self) -> Graph {
        Graph {
            out: self.out.with_compressed(),
            into: self.into.with_compressed(),
            directed: self.directed,
        }
    }

    /// Compressed-vs-raw byte accounting of the CSR half, when a
    /// compressed companion is attached.
    pub fn compression_stats(&self) -> Option<crate::compress::CompressionStats> {
        self.out.compression_stats()
    }

    /// The transposed graph: every arc `(u, v)` becomes `(v, u)`. Since a
    /// [`Graph`] stores both directions, this is a cheap swap of the two
    /// adjacency halves. Used by algorithms with a backward dependency
    /// pass (betweenness centrality).
    pub fn transposed(&self) -> Graph {
        Graph {
            out: self.into.clone(),
            into: self.out.clone(),
            directed: self.directed,
        }
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function used
/// for deterministic edge weights and test data.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_graph() -> Graph {
        // The example graph of Figure 3: in-degrees 1,2,2,2,4,3.
        Graph::from_edges(
            6,
            &[
                (2, 0),
                (5, 1),
                (3, 1),
                (1, 2),
                (5, 2),
                (4, 3),
                (5, 3),
                (0, 4),
                (1, 4),
                (2, 4),
                (3, 4),
                (4, 5),
                (2, 5),
                (1, 5),
            ],
            true,
        )
    }

    #[test]
    fn fig3_in_degrees_match_paper() {
        let g = fig3_graph();
        let degs: Vec<usize> = (0..6).map(|v| g.in_degree(v)).collect();
        assert_eq!(degs, vec![1, 2, 2, 2, 4, 3]);
    }

    #[test]
    fn directed_graph_separates_in_and_out() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)], true);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(1), 1);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(2), &[0]);
    }

    #[test]
    fn undirected_graph_symmetrizes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], false);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(1), &[0, 2]);
        assert_eq!(g.in_neighbors(1), &[0, 2]);
        assert!(!g.is_directed());
    }

    #[test]
    fn undirected_graph_collapses_mirrored_input() {
        // Input already lists both directions: must not double up.
        let g = Graph::from_edges(2, &[(0, 1), (1, 0)], false);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
    }

    #[test]
    fn undirected_self_loop_stored_once() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)], false);
        assert_eq!(g.out_neighbors(0), &[0, 1]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn csc_is_transpose_of_csr() {
        let g = fig3_graph();
        assert_eq!(g.csr().transpose(), *g.csc());
    }

    #[test]
    fn from_parts_rejects_mismatched_halves() {
        let out = Adjacency::from_pairs(3, &[(0, 1)]);
        let into = Adjacency::from_pairs(4, &[(1, 0)]);
        assert!(Graph::from_parts(out, into, true).is_err());
    }

    #[test]
    fn hash_weights_agree_between_views() {
        let g = fig3_graph().with_hash_weights(16);
        for u in g.vertices() {
            for (k, &v) in g.out_neighbors(u).iter().enumerate() {
                let w_out = g.csr().weights_of(u)[k];
                let pos = g.in_neighbors(v).iter().position(|&s| s == u).unwrap();
                let w_in = g.csc().weights_of(v)[pos];
                assert_eq!(w_out, w_in, "weight mismatch on ({u}, {v})");
            }
        }
    }

    #[test]
    fn hash_weights_are_in_range() {
        let g = fig3_graph().with_hash_weights(8);
        for u in g.vertices() {
            for &w in g.csr().weights_of(u) {
                assert!((1.0..=8.0).contains(&w));
            }
        }
    }

    #[test]
    fn undirected_weights_are_mirrored() {
        let g = Graph::from_edges_weighted(3, &[(0, 1)], Some(&[2.5]), false);
        assert_eq!(g.csr().weights_of(0), &[2.5]);
        assert_eq!(g.csr().weights_of(1), &[2.5]);
    }

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Low bits should differ for consecutive inputs (avalanche sanity).
        let a = mix64(100) & 0xFFFF;
        let b = mix64(101) & 0xFFFF;
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, &[(0, 5)], true);
    }
}
