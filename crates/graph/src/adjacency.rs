//! Compressed sparse row/column adjacency storage.
//!
//! [`Adjacency`] is direction-agnostic: a `Graph` uses one instance indexed
//! by source (CSR, out-edges) and one indexed by destination (CSC,
//! in-edges). Offsets are `usize` (one entry per vertex plus a sentinel) and
//! neighbor ids are [`VertexId`] to keep the hot arrays compact.
//!
//! Each of the three flat arrays sits behind a
//! [`GraphStorage`]: built graphs own their
//! `Vec`s, graphs loaded through
//! [`mmap_binary_graph`](crate::io::binary::mmap_binary_graph) borrow the
//! mapped file zero-copy. All accessors return plain slices either way, so
//! consumers never branch on the backing.

use crate::compress::{CompressedCsr, CompressionStats};
use crate::par::{weighted_ranges, ParMode, SharedSlice};
use crate::storage::{GraphStorage, StorageKind};
use crate::types::{GraphError, VertexId};
use rayon::prelude::*;

/// A compressed adjacency structure: `neighbors(v)` is the slice
/// `targets[offsets[v]..offsets[v+1]]`.
///
/// Neighbor lists are sorted ascending by construction, which makes
/// membership tests `O(log d)` and gives deterministic iteration order.
///
/// An optional [`CompressedCsr`] companion (attached by
/// [`Adjacency::with_compressed`] or the `.vgr` v3 loader) carries the
/// same neighbor lists delta/varint packed; the plain arrays stay
/// authoritative and every accessor keeps working, while the engine's
/// hot loops decode the companion to shrink their working set.
///
/// Equality is content equality on the plain arrays: an owned, a mapped,
/// and a compressed adjacency holding the same lists all compare equal
/// (the companion is derived data, so it does not participate).
#[derive(Clone, Debug)]
pub struct Adjacency {
    offsets: GraphStorage<usize>,
    targets: GraphStorage<VertexId>,
    weights: Option<GraphStorage<f32>>,
    compressed: Option<CompressedCsr>,
}

impl PartialEq for Adjacency {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets
            && self.targets == other.targets
            && self.weights == other.weights
    }
}

impl Adjacency {
    /// Builds an adjacency structure from `(index_vertex, neighbor)` pairs
    /// using a counting sort: `O(n + m)` time, no comparison sort involved.
    ///
    /// Within each vertex the neighbor list is sorted ascending.
    pub fn from_pairs(num_vertices: usize, pairs: &[(VertexId, VertexId)]) -> Self {
        Self::from_pairs_weighted(num_vertices, pairs, None)
    }

    /// As [`Adjacency::from_pairs`] but carrying a per-edge weight parallel
    /// to `pairs`.
    pub fn from_pairs_weighted(
        num_vertices: usize,
        pairs: &[(VertexId, VertexId)],
        weights: Option<&[f32]>,
    ) -> Self {
        Self::from_pairs_with(num_vertices, pairs, weights, ParMode::default())
    }

    /// As [`Adjacency::from_pairs_weighted`] with an explicit execution
    /// mode. The parallel and sequential paths produce bit-identical
    /// structures: the scatter is stable (input order within each vertex)
    /// and the per-vertex sorts run the same algorithm on the same data.
    pub fn from_pairs_with(
        num_vertices: usize,
        pairs: &[(VertexId, VertexId)],
        weights: Option<&[f32]>,
        mode: ParMode,
    ) -> Self {
        if let Some(w) = weights {
            assert_eq!(w.len(), pairs.len(), "one weight per edge required");
        }
        if mode.go_parallel(pairs.len()) {
            Self::build_parallel(num_vertices, pairs, weights)
        } else {
            Self::build_sequential(num_vertices, pairs, weights)
        }
    }

    /// The sequential counting-sort reference path.
    fn build_sequential(
        num_vertices: usize,
        pairs: &[(VertexId, VertexId)],
        weights: Option<&[f32]>,
    ) -> Self {
        let mut offsets = vec![0usize; num_vertices + 1];
        for &(v, _) in pairs {
            offsets[v as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; pairs.len()];
        let mut out_weights = weights.map(|_| vec![0f32; pairs.len()]);
        for (e, &(v, t)) in pairs.iter().enumerate() {
            let slot = cursor[v as usize];
            targets[slot] = t;
            if let (Some(ow), Some(w)) = (out_weights.as_mut(), weights) {
                ow[slot] = w[e];
            }
            cursor[v as usize] += 1;
        }
        sort_lists(&offsets, &mut targets, out_weights.as_deref_mut());
        Adjacency::from_owned(offsets, targets, out_weights)
    }

    /// Parallel counting sort over *edge-range chunks*: each thread scans
    /// only its `m / threads` slice of the pair list, once to build a
    /// local histogram and once to scatter, so total work stays `O(n + m)`
    /// regardless of thread count. The histograms are converted in place
    /// into per-chunk scatter bases by one `O(chunks * n)` prefix pass;
    /// chunk `c`'s base for vertex `v` accounts for all of `v`'s pairs in
    /// chunks `< c`, which keeps the scatter stable (global input order
    /// within each vertex) and every write slot disjoint. Memory overhead
    /// is the `chunks * n` base table — on the paper's graphs (edge factor
    /// >= 10) that is a fraction of the edge arrays themselves.
    fn build_parallel(
        num_vertices: usize,
        pairs: &[(VertexId, VertexId)],
        weights: Option<&[f32]>,
    ) -> Self {
        let n = num_vertices;
        let m = pairs.len();
        let chunks = rayon::current_num_threads().clamp(1, m.max(1));
        let per = m.div_ceil(chunks);
        let chunk_range = |c: usize| ((c * per).min(m))..((c + 1) * per).min(m);

        // Phase 1: per-chunk histograms, each thread scanning its own
        // slice of `pairs` only.
        let mut bases = vec![0usize; chunks * n];
        bases
            .par_chunks_mut(n.max(1))
            .enumerate()
            .for_each(|(c, window)| {
                for &(v, _) in &pairs[chunk_range(c)] {
                    window[v as usize] += 1;
                }
            });

        // Phase 2: one prefix pass turns histograms into offsets and
        // per-chunk scatter bases in place.
        let mut offsets = vec![0usize; n + 1];
        let mut acc = 0usize;
        for v in 0..n {
            offsets[v] = acc;
            for c in 0..chunks {
                let cell = &mut bases[c * n + v];
                let count = *cell;
                *cell = acc;
                acc += count;
            }
        }
        offsets[n] = acc;
        debug_assert_eq!(acc, m);

        // Phase 3: stable scatter, each thread re-scanning only its chunk.
        let mut targets = vec![0 as VertexId; m];
        let mut out_weights = weights.map(|_| vec![0f32; m]);
        {
            let tshared = SharedSlice::new(&mut targets);
            let wshared = out_weights
                .as_mut()
                .map(|w| SharedSlice::new(w.as_mut_slice()));
            bases
                .par_chunks_mut(n.max(1))
                .enumerate()
                .for_each(|(c, window)| {
                    let range = chunk_range(c);
                    let base_e = range.start;
                    for (k, &(v, t)) in pairs[range].iter().enumerate() {
                        let slot = window[v as usize];
                        window[v as usize] = slot + 1;
                        // SAFETY: chunk `c`'s slots for vertex `v` occupy
                        // [bases[c][v], bases[c][v] + count_c(v)), disjoint
                        // across chunks and vertices by construction.
                        unsafe { tshared.write(slot, t) };
                        if let (Some(ws), Some(w)) = (&wshared, weights) {
                            // SAFETY: same disjoint slot.
                            unsafe { ws.write(slot, w[base_e + k]) };
                        }
                    }
                });
        }
        sort_lists_parallel(&offsets, &mut targets, out_weights.as_deref_mut());
        Adjacency::from_owned(offsets, targets, out_weights)
    }

    /// Wraps already-built owned arrays without re-validating them.
    fn from_owned(offsets: Vec<usize>, targets: Vec<VertexId>, weights: Option<Vec<f32>>) -> Self {
        Adjacency {
            offsets: offsets.into(),
            targets: targets.into(),
            weights: weights.map(Into::into),
            compressed: None,
        }
    }

    /// Builds from parts the caller already proved consistent (private to
    /// the crate: used by the permutation fast path, which constructs
    /// valid CSR arrays directly).
    pub(crate) fn from_parts_unchecked(
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        weights: Option<Vec<f32>>,
    ) -> Self {
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        Adjacency::from_owned(offsets, targets, weights)
    }

    /// Builds directly from raw CSR arrays. Validates the invariants.
    pub fn from_raw(
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        weights: Option<Vec<f32>>,
    ) -> Result<Self, GraphError> {
        Self::from_storage(offsets.into(), targets.into(), weights.map(Into::into))
    }

    /// Builds from CSR sections in any [`GraphStorage`] backing (the
    /// mmap loader hands in mapped sections here), validating the same
    /// invariants as [`Adjacency::from_raw`]: monotonic offsets
    /// terminating at the edge count, every target in range, one weight
    /// per edge.
    pub fn from_storage(
        offsets: GraphStorage<usize>,
        targets: GraphStorage<VertexId>,
        weights: Option<GraphStorage<f32>>,
    ) -> Result<Self, GraphError> {
        {
            let off = offsets.as_slice();
            let tgt = targets.as_slice();
            if off.is_empty() {
                return Err(GraphError::OffsetsEdgeMismatch {
                    last_offset: 0,
                    num_edges: tgt.len(),
                });
            }
            for i in 1..off.len() {
                if off[i] < off[i - 1] {
                    return Err(GraphError::NonMonotonicOffsets { index: i });
                }
            }
            if *off.last().unwrap() != tgt.len() {
                return Err(GraphError::OffsetsEdgeMismatch {
                    last_offset: *off.last().unwrap(),
                    num_edges: tgt.len(),
                });
            }
            let n = off.len() - 1;
            if let Some(&bad) = tgt.iter().find(|&&t| (t as usize) >= n) {
                return Err(GraphError::VertexOutOfRange {
                    vertex: bad as u64,
                    num_vertices: n,
                });
            }
            if let Some(w) = &weights {
                assert_eq!(
                    w.as_slice().len(),
                    tgt.len(),
                    "one weight per edge required"
                );
            }
        }
        Ok(Adjacency {
            offsets,
            targets,
            weights,
            compressed: None,
        })
    }

    /// The backing kind: [`StorageKind::Compressed`] when a compressed
    /// companion is attached, [`StorageKind::Mapped`] when any plain
    /// section is a zero-copy view of a mapped file.
    pub fn storage_kind(&self) -> StorageKind {
        if self.compressed.is_some() {
            return StorageKind::Compressed;
        }
        let mapped = self.offsets.kind() == StorageKind::Mapped
            || self.targets.kind() == StorageKind::Mapped
            || self
                .weights
                .as_ref()
                .is_some_and(|w| w.kind() == StorageKind::Mapped);
        if mapped {
            StorageKind::Mapped
        } else {
            StorageKind::Owned
        }
    }

    /// The compressed companion representation, when one is attached.
    #[inline]
    pub fn compressed(&self) -> Option<&CompressedCsr> {
        self.compressed.as_ref()
    }

    /// Attaches a delta/varint compressed companion computed from the
    /// plain arrays (a no-op when one is already attached). The plain
    /// arrays stay authoritative; see [`CompressedCsr`].
    pub fn with_compressed(mut self) -> Adjacency {
        if self.compressed.is_none() {
            self.compressed = Some(CompressedCsr::from_csr(
                self.offsets.as_slice(),
                self.targets.as_slice(),
            ));
        }
        self
    }

    /// Attaches an already-built companion (the `.vgr` v3 loader, whose
    /// sections may be zero-copy views of the mapped file). The caller
    /// must have validated that `compressed` decodes to exactly this
    /// adjacency's target lists.
    pub fn with_compressed_storage(mut self, compressed: CompressedCsr) -> Adjacency {
        self.compressed = Some(compressed);
        self
    }

    /// Compressed-vs-raw byte accounting, when a companion is attached.
    pub fn compression_stats(&self) -> Option<CompressionStats> {
        self.compressed.as_ref().map(|c| c.stats(self.num_edges()))
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbor slice of `v` (sorted ascending).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Start of `v`'s neighbor range in the flat `targets` array.
    #[inline]
    pub fn edge_start(&self, v: VertexId) -> usize {
        self.offsets[v as usize]
    }

    /// Weight slice of `v`, parallel to [`Adjacency::neighbors`].
    /// Panics if the adjacency is unweighted.
    #[inline]
    pub fn weights_of(&self, v: VertexId) -> &[f32] {
        let w = self.weights.as_ref().expect("adjacency has no weights");
        &w[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Whether per-edge weights are present.
    #[inline]
    pub fn has_weights(&self) -> bool {
        self.weights.is_some()
    }

    /// The raw offsets array (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        self.offsets.as_slice()
    }

    /// The flat neighbor array (length `m`).
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        self.targets.as_slice()
    }

    /// The flat weight array, if present.
    #[inline]
    pub fn raw_weights(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// `true` if `v` has an arc to `t` (binary search; lists are sorted).
    pub fn has_edge(&self, v: VertexId, t: VertexId) -> bool {
        self.neighbors(v).binary_search(&t).is_ok()
    }

    /// Returns the transposed adjacency (in-edges become out-edges), again
    /// via counting sort in `O(n + m)`.
    pub fn transpose(&self) -> Adjacency {
        self.transpose_with(ParMode::default())
    }

    /// As [`Adjacency::transpose`] with an explicit execution mode; both
    /// paths produce bit-identical structures.
    pub fn transpose_with(&self, mode: ParMode) -> Adjacency {
        if mode.go_parallel(self.num_edges()) {
            self.transpose_parallel()
        } else {
            self.transpose_sequential()
        }
    }

    fn transpose_sequential(&self) -> Adjacency {
        let n = self.num_vertices();
        let mut offsets = vec![0usize; n + 1];
        for &t in self.targets.iter() {
            offsets[t as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; self.targets.len()];
        let mut weights = self
            .weights
            .as_ref()
            .map(|_| vec![0f32; self.targets.len()]);
        for v in 0..n as VertexId {
            let base = self.offsets[v as usize];
            for (k, &t) in self.neighbors(v).iter().enumerate() {
                let slot = cursor[t as usize];
                targets[slot] = v;
                if let (Some(wo), Some(wi)) = (weights.as_mut(), self.weights.as_ref()) {
                    wo[slot] = wi[base + k];
                }
                cursor[t as usize] += 1;
            }
        }
        // Sources are visited in ascending order, so each transposed
        // neighbor list is already sorted: no extra sort needed.
        Adjacency::from_owned(offsets, targets, weights)
    }

    /// Parallel transpose with the same edge-chunked structure as the
    /// parallel builder (`O(n + m)` total work; see
    /// [`Adjacency::build_parallel`]). Chunks cover contiguous ranges of
    /// the flat CSR edge array, so each chunk's arcs are in ascending
    /// source order and the stable scatter leaves every transposed list
    /// sorted by source, exactly like the sequential path.
    fn transpose_parallel(&self) -> Adjacency {
        let n = self.num_vertices();
        let m = self.num_edges();
        let chunks = rayon::current_num_threads().clamp(1, m.max(1));
        let per = m.div_ceil(chunks);
        let chunk_range = |c: usize| ((c * per).min(m))..((c + 1) * per).min(m);

        // Phase 1: per-chunk in-degree histograms over edge ranges.
        let mut bases = vec![0usize; chunks * n];
        bases
            .par_chunks_mut(n.max(1))
            .enumerate()
            .for_each(|(c, window)| {
                for &t in &self.targets[chunk_range(c)] {
                    window[t as usize] += 1;
                }
            });

        // Phase 2: histograms -> offsets + per-chunk bases, in place.
        let mut offsets = vec![0usize; n + 1];
        let mut acc = 0usize;
        for v in 0..n {
            offsets[v] = acc;
            for c in 0..chunks {
                let cell = &mut bases[c * n + v];
                let count = *cell;
                *cell = acc;
                acc += count;
            }
        }
        offsets[n] = acc;
        debug_assert_eq!(acc, m);

        // Phase 3: stable scatter; each chunk walks its edge range,
        // tracking the source vertex via the CSR offsets.
        let mut targets = vec![0 as VertexId; m];
        let mut weights = self.weights.as_ref().map(|_| vec![0f32; m]);
        {
            let tshared = SharedSlice::new(&mut targets);
            let wshared = weights.as_mut().map(|w| SharedSlice::new(w.as_mut_slice()));
            bases
                .par_chunks_mut(n.max(1))
                .enumerate()
                .for_each(|(c, window)| {
                    let range = chunk_range(c);
                    if range.is_empty() {
                        return;
                    }
                    // First source whose edge range contains this chunk's
                    // first edge.
                    let mut v = self.offsets.partition_point(|&o| o <= range.start) - 1;
                    for e in range {
                        while e >= self.offsets[v + 1] {
                            v += 1;
                        }
                        let t = self.targets[e] as usize;
                        let slot = window[t];
                        window[t] = slot + 1;
                        // SAFETY: chunk `c`'s slots for destination `t` occupy
                        // [bases[c][t], bases[c][t] + count_c(t)), disjoint
                        // across chunks and destinations by construction.
                        unsafe { tshared.write(slot, v as VertexId) };
                        if let (Some(ws), Some(wi)) = (&wshared, self.weights.as_ref()) {
                            // SAFETY: same disjoint slot.
                            unsafe { ws.write(slot, wi[e]) };
                        }
                    }
                });
        }
        Adjacency::from_owned(offsets, targets, weights)
    }

    /// Attaches weights computed per edge as `f(index_vertex, neighbor)`.
    pub fn with_weights(mut self, f: impl Fn(VertexId, VertexId) -> f32) -> Adjacency {
        let mut w = vec![0f32; self.targets.len()];
        for v in 0..self.num_vertices() as VertexId {
            let base = self.offsets[v as usize];
            for (k, &t) in self.neighbors(v).iter().enumerate() {
                w[base + k] = f(v, t);
            }
        }
        self.weights = Some(w.into());
        self
    }

    /// Iterates all arcs as `(index_vertex, neighbor)` in CSR order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&t| (v, t)))
    }
}

/// Sorts every neighbor list ascending, in place, keeping an optional
/// weight array parallel. Runs on the owned arrays before they are
/// wrapped into their [`GraphStorage`] backing.
fn sort_lists(offsets: &[usize], targets: &mut [VertexId], weights: Option<&mut [f32]>) {
    let n = offsets.len() - 1;
    match weights {
        None => {
            for v in 0..n {
                targets[offsets[v]..offsets[v + 1]].sort_unstable();
            }
        }
        Some(w) => {
            for v in 0..n {
                let range = offsets[v]..offsets[v + 1];
                sort_weighted_list(&mut targets[range.clone()], &mut w[range]);
            }
        }
    }
}

/// Per-vertex list sort over edge-balanced vertex ranges. Each list is
/// touched by exactly one thread, and the sort is the same algorithm
/// as the sequential path, so results are identical.
fn sort_lists_parallel(offsets: &[usize], targets: &mut [VertexId], weights: Option<&mut [f32]>) {
    let ranges = weighted_ranges(offsets, rayon::current_num_threads());
    match weights {
        None => {
            let tshared = SharedSlice::new(targets);
            let ranges = &ranges;
            (0..ranges.len()).into_par_iter().for_each(|ri| {
                for v in ranges[ri].clone() {
                    // SAFETY: vertex ranges are disjoint, so the edge
                    // ranges [offsets[v], offsets[v+1]) are too.
                    let list = unsafe { tshared.slice_mut(offsets[v], offsets[v + 1]) };
                    list.sort_unstable();
                }
            });
        }
        Some(w) => {
            let tshared = SharedSlice::new(targets);
            let wshared = SharedSlice::new(w);
            let ranges = &ranges;
            (0..ranges.len()).into_par_iter().for_each(|ri| {
                for v in ranges[ri].clone() {
                    // SAFETY: as above; targets and weights share the
                    // same disjoint edge ranges.
                    let list = unsafe { tshared.slice_mut(offsets[v], offsets[v + 1]) };
                    let wts = unsafe { wshared.slice_mut(offsets[v], offsets[v + 1]) };
                    sort_weighted_list(list, wts);
                }
            });
        }
    }
}

/// Sorts a neighbor list ascending, keeping its weight slice parallel.
pub(crate) fn sort_weighted_list(targets: &mut [VertexId], weights: &mut [f32]) {
    let mut zip: Vec<(VertexId, f32)> = targets
        .iter()
        .copied()
        .zip(weights.iter().copied())
        .collect();
    zip.sort_unstable_by_key(|&(t, _)| t);
    for (k, (t, wt)) in zip.into_iter().enumerate() {
        targets[k] = t;
        weights[k] = wt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Adjacency {
        // 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
        Adjacency::from_pairs(4, &[(0, 2), (0, 1), (1, 2), (3, 0)])
    }

    #[test]
    fn from_pairs_builds_sorted_csr() {
        let a = small();
        assert_eq!(a.num_vertices(), 4);
        assert_eq!(a.num_edges(), 4);
        assert_eq!(a.neighbors(0), &[1, 2]);
        assert_eq!(a.neighbors(1), &[2]);
        assert_eq!(a.neighbors(2), &[] as &[VertexId]);
        assert_eq!(a.neighbors(3), &[0]);
    }

    #[test]
    fn degree_matches_neighbor_len() {
        let a = small();
        for v in 0..4 {
            assert_eq!(a.degree(v), a.neighbors(v).len());
        }
    }

    #[test]
    fn transpose_reverses_all_edges() {
        let a = small();
        let t = a.transpose();
        assert_eq!(t.neighbors(0), &[3]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(3), &[] as &[VertexId]);
    }

    #[test]
    fn double_transpose_is_identity() {
        let a = small();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transposed_lists_are_sorted() {
        let a = Adjacency::from_pairs(5, &[(4, 2), (0, 2), (3, 2), (1, 2), (2, 2)]);
        let t = a.transpose();
        assert_eq!(t.neighbors(2), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn has_edge_uses_sorted_lookup() {
        let a = small();
        assert!(a.has_edge(0, 1));
        assert!(a.has_edge(0, 2));
        assert!(!a.has_edge(0, 3));
        assert!(!a.has_edge(2, 0));
    }

    #[test]
    fn weights_follow_targets_through_sort() {
        let a = Adjacency::from_pairs_weighted(3, &[(0, 2), (0, 1)], Some(&[20.0, 10.0]));
        assert_eq!(a.neighbors(0), &[1, 2]);
        assert_eq!(a.weights_of(0), &[10.0, 20.0]);
    }

    #[test]
    fn weights_follow_targets_through_transpose() {
        let a = Adjacency::from_pairs_weighted(3, &[(0, 2), (1, 2)], Some(&[5.0, 7.0]));
        let t = a.transpose();
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.weights_of(2), &[5.0, 7.0]);
    }

    #[test]
    fn with_weights_applies_function() {
        let a = small().with_weights(|u, v| (u + v) as f32);
        assert_eq!(a.weights_of(0), &[1.0, 2.0]);
        assert_eq!(a.weights_of(3), &[3.0]);
    }

    #[test]
    fn from_raw_validates_monotonicity() {
        let r = Adjacency::from_raw(vec![0, 2, 1], vec![0, 1], None);
        assert!(matches!(
            r,
            Err(GraphError::NonMonotonicOffsets { index: 2 })
        ));
    }

    #[test]
    fn from_raw_validates_edge_count() {
        let r = Adjacency::from_raw(vec![0, 1, 3], vec![0, 1], None);
        assert!(matches!(r, Err(GraphError::OffsetsEdgeMismatch { .. })));
    }

    #[test]
    fn from_raw_validates_target_range() {
        let r = Adjacency::from_raw(vec![0, 1, 2], vec![0, 7], None);
        assert!(matches!(
            r,
            Err(GraphError::VertexOutOfRange { vertex: 7, .. })
        ));
    }

    #[test]
    fn iter_edges_covers_every_arc_in_order() {
        let a = small();
        let edges: Vec<_> = a.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (3, 0)]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let a = Adjacency::from_pairs(0, &[]);
        assert_eq!(a.num_vertices(), 0);
        assert_eq!(a.num_edges(), 0);
    }

    #[test]
    fn parallel_edges_are_preserved() {
        let a = Adjacency::from_pairs(2, &[(0, 1), (0, 1)]);
        assert_eq!(a.neighbors(0), &[1, 1]);
        assert_eq!(a.num_edges(), 2);
    }

    #[test]
    fn compressed_companion_roundtrips_and_reports_kind() {
        let a = small();
        assert_eq!(a.storage_kind(), StorageKind::Owned);
        let c = a.clone().with_compressed();
        assert_eq!(c.storage_kind(), StorageKind::Compressed);
        // The plain accessors are untouched by the companion.
        assert_eq!(c.neighbors(0), a.neighbors(0));
        assert_eq!(c.offsets(), a.offsets());
        // The companion decodes back to exactly the target array.
        let decoded = c
            .compressed()
            .unwrap()
            .decode_to_targets(c.offsets())
            .unwrap();
        assert_eq!(decoded, c.targets());
        let stats = c.compression_stats().unwrap();
        assert_eq!(stats.raw_bytes, c.num_edges() * 4);
    }

    #[test]
    fn equality_ignores_compressed_companion() {
        let a = small();
        let c = a.clone().with_compressed();
        assert_eq!(a, c);
        assert_eq!(c.transpose(), a.transpose());
    }
}
