//! Vertex permutations and the [`VertexOrdering`] trait implemented by
//! every reordering algorithm in the workspace (VEBO, RCM, Gorder, …).
//!
//! A [`Permutation`] maps *old* vertex ids to *new* vertex ids — the `S[v]`
//! sequence numbers of Algorithm 2 in the paper. Applying it to a graph
//! yields the isomorphic, relabeled graph that is then fed to the chunk
//! partitioner (Algorithm 1).

use crate::adjacency::Adjacency;
use crate::graph::Graph;
use crate::par::{weighted_ranges, ParMode, SharedSlice};
use crate::types::{GraphError, VertexId};
use rayon::prelude::*;

/// A bijection `old id -> new id` over `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    new_id: Vec<VertexId>,
}

impl Permutation {
    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Permutation {
        Permutation {
            new_id: (0..n as VertexId).collect(),
        }
    }

    /// Builds from the `S[v]` array (`new_id[old] = new`). Validates that
    /// the mapping is a bijection on `0..n`.
    pub fn from_new_ids(new_id: Vec<VertexId>) -> Result<Permutation, GraphError> {
        let n = new_id.len();
        let mut seen = vec![false; n];
        for &s in &new_id {
            let s = s as usize;
            if s >= n {
                return Err(GraphError::InvalidPermutation {
                    reason: "id out of range",
                });
            }
            if seen[s] {
                return Err(GraphError::InvalidPermutation {
                    reason: "duplicate id",
                });
            }
            seen[s] = true;
        }
        Ok(Permutation { new_id })
    }

    /// Builds from a placement *order*: `order[k]` is the old id of the
    /// vertex that receives new id `k`. This is the inverse view of
    /// [`Permutation::from_new_ids`].
    pub fn from_order(order: &[VertexId]) -> Result<Permutation, GraphError> {
        let n = order.len();
        let mut new_id = vec![VertexId::MAX; n];
        for (k, &old) in order.iter().enumerate() {
            let o = old as usize;
            if o >= n {
                return Err(GraphError::InvalidPermutation {
                    reason: "id out of range",
                });
            }
            if new_id[o] != VertexId::MAX {
                return Err(GraphError::InvalidPermutation {
                    reason: "duplicate id",
                });
            }
            new_id[o] = k as VertexId;
        }
        Ok(Permutation { new_id })
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.new_id.len()
    }

    /// `true` for the empty permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_id.is_empty()
    }

    /// New id of old vertex `old`.
    #[inline]
    pub fn new_id(&self, old: VertexId) -> VertexId {
        self.new_id[old as usize]
    }

    /// The raw `S[v]` array.
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        &self.new_id
    }

    /// The inverse mapping (`new id -> old id`).
    pub fn inverse(&self) -> Permutation {
        let mut old_id = vec![0 as VertexId; self.new_id.len()];
        for (old, &new) in self.new_id.iter().enumerate() {
            old_id[new as usize] = old as VertexId;
        }
        Permutation { new_id: old_id }
    }

    /// Composition: applies `self` first, then `then`
    /// (`result.new_id(v) == then.new_id(self.new_id(v))`).
    pub fn then(&self, then: &Permutation) -> Permutation {
        assert_eq!(self.len(), then.len());
        let new_id = self.new_id.iter().map(|&mid| then.new_id(mid)).collect();
        Permutation { new_id }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.new_id
            .iter()
            .enumerate()
            .all(|(i, &s)| i == s as usize)
    }

    /// Relabels a graph: vertex `old` becomes `self.new_id(old)` and every
    /// arc `(u, v)` becomes `(S[u], S[v])`. Edge weights travel with their
    /// arcs. The result is isomorphic to the input.
    pub fn apply_graph(&self, g: &Graph) -> Graph {
        self.apply_graph_with(g, ParMode::default())
    }

    /// As [`Permutation::apply_graph`] with an explicit execution mode;
    /// both paths produce identical graphs.
    ///
    /// The permuted CSR is constructed directly — new vertex `S[u]`
    /// inherits `u`'s degree, so offsets are a scatter of the old degree
    /// array and each neighbor list is gathered, relabeled, and sorted in
    /// place. No intermediate edge list is materialized, and every
    /// per-vertex step parallelizes over edge-balanced ranges of new ids.
    pub fn apply_graph_with(&self, g: &Graph, mode: ParMode) -> Graph {
        assert_eq!(self.len(), g.num_vertices());
        let n = g.num_vertices();
        let m = g.num_edges();
        let csr = g.csr();
        let parallel = mode.go_parallel(m);
        let inv = self.inverse();
        let old_of = inv.as_slice();

        // Offsets: new vertex k has the degree of old vertex old_of[k].
        let mut offsets = vec![0usize; n + 1];
        if parallel {
            offsets[1..]
                .par_iter_mut()
                .enumerate()
                .for_each(|(k, slot)| {
                    *slot = csr.degree(old_of[k]);
                });
        } else {
            for k in 0..n {
                offsets[k + 1] = csr.degree(old_of[k]);
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }

        // Gather + relabel + sort each new neighbor list.
        let mut targets = vec![0 as VertexId; m];
        let mut weights = csr.raw_weights().map(|_| vec![0f32; m]);
        let relabel_list = |k: usize, list: &mut [VertexId], wts: Option<&mut [f32]>| {
            let u = old_of[k];
            for (j, &v) in csr.neighbors(u).iter().enumerate() {
                list[j] = self.new_id(v);
            }
            match wts {
                Some(wts) => {
                    wts.copy_from_slice(csr.weights_of(u));
                    crate::adjacency::sort_weighted_list(list, wts);
                }
                None => list.sort_unstable(),
            }
        };
        if parallel {
            let ranges = weighted_ranges(&offsets, rayon::current_num_threads());
            let tshared = SharedSlice::new(&mut targets);
            let wshared = weights.as_mut().map(|w| SharedSlice::new(w.as_mut_slice()));
            let (ranges, offsets) = (&ranges, &offsets);
            (0..ranges.len()).into_par_iter().for_each(|ri| {
                for k in ranges[ri].clone() {
                    // SAFETY: new-id ranges are disjoint, so the edge
                    // ranges [offsets[k], offsets[k+1]) are too.
                    let list = unsafe { tshared.slice_mut(offsets[k], offsets[k + 1]) };
                    let wts = wshared
                        .as_ref()
                        .map(|ws| unsafe { ws.slice_mut(offsets[k], offsets[k + 1]) });
                    relabel_list(k, list, wts);
                }
            });
        } else {
            for k in 0..n {
                let range = offsets[k]..offsets[k + 1];
                let (list, wts) = match weights.as_mut() {
                    Some(w) => (&mut targets[range.clone()], Some(&mut w[range])),
                    None => (&mut targets[range], None),
                };
                relabel_list(k, list, wts);
            }
        }

        let out = Adjacency::from_parts_unchecked(offsets, targets, weights);
        let into = out.transpose_with(mode);
        Graph::from_parts(out, into, g.is_directed()).expect("permuted graph is well-formed")
    }

    /// Reindexes a per-vertex value array from old-id indexing to new-id
    /// indexing (`result[S[v]] = values[v]`).
    pub fn apply_values<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(self.len(), values.len());
        let mut out = values.to_vec();
        for (old, &new) in self.new_id.iter().enumerate() {
            out[new as usize] = values[old].clone();
        }
        out
    }
}

/// A vertex-reordering algorithm (the "vertex reordering" stage in the
/// paper's Figure 2 pipeline).
pub trait VertexOrdering {
    /// Human-readable name used in experiment tables ("VEBO", "RCM", …).
    fn name(&self) -> &str;

    /// Computes the permutation for `g`.
    fn compute(&self, g: &Graph) -> Permutation;
}

/// The identity ordering ("Original" rows of the paper's tables).
#[derive(Debug, Default, Clone, Copy)]
pub struct OriginalOrder;

impl VertexOrdering for OriginalOrder {
    fn name(&self) -> &str {
        "Original"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        Permutation::identity(g.num_vertices())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], true)
    }

    #[test]
    fn identity_maps_to_self() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        for v in 0..5 {
            assert_eq!(p.new_id(v), v);
        }
    }

    #[test]
    fn from_new_ids_rejects_duplicates() {
        assert!(Permutation::from_new_ids(vec![0, 0, 1]).is_err());
    }

    #[test]
    fn from_new_ids_rejects_out_of_range() {
        assert!(Permutation::from_new_ids(vec![0, 3]).is_err());
    }

    #[test]
    fn from_order_inverts_from_new_ids() {
        // order: vertex 2 first, then 0, then 1 => S = [1, 2, 0]
        let p = Permutation::from_order(&[2, 0, 1]).unwrap();
        assert_eq!(p.as_slice(), &[1, 2, 0]);
    }

    #[test]
    fn inverse_roundtrips() {
        let p = Permutation::from_new_ids(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        for v in 0..4 {
            assert_eq!(inv.new_id(p.new_id(v)), v);
        }
        assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    fn composition_applies_in_sequence() {
        let p = Permutation::from_new_ids(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_new_ids(vec![2, 0, 1]).unwrap();
        let r = p.then(&q);
        for v in 0..3 {
            assert_eq!(r.new_id(v), q.new_id(p.new_id(v)));
        }
    }

    #[test]
    fn apply_graph_preserves_structure() {
        let g = sample();
        let p = Permutation::from_new_ids(vec![3, 1, 0, 2]).unwrap();
        let h = p.apply_graph(&g);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        // Every original edge must exist under the new labels.
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                assert!(h.csr().has_edge(p.new_id(u), p.new_id(v)));
            }
        }
    }

    #[test]
    fn apply_graph_preserves_degree_multiset() {
        let g = sample();
        let p = Permutation::from_new_ids(vec![2, 3, 1, 0]).unwrap();
        let h = p.apply_graph(&g);
        let mut dg: Vec<usize> = g.vertices().map(|v| g.in_degree(v)).collect();
        let mut dh: Vec<usize> = h.vertices().map(|v| h.in_degree(v)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        assert_eq!(dg, dh);
    }

    #[test]
    fn apply_graph_moves_weights_with_edges() {
        let g = sample().with_hash_weights(32);
        let p = Permutation::from_new_ids(vec![1, 0, 3, 2]).unwrap();
        let h = p.apply_graph(&g);
        for u in g.vertices() {
            for (k, &v) in g.out_neighbors(u).iter().enumerate() {
                let w = g.csr().weights_of(u)[k];
                let (nu, nv) = (p.new_id(u), p.new_id(v));
                let pos = h.out_neighbors(nu).iter().position(|&x| x == nv).unwrap();
                assert_eq!(h.csr().weights_of(nu)[pos], w);
            }
        }
    }

    #[test]
    fn apply_values_reindexes() {
        let p = Permutation::from_new_ids(vec![2, 0, 1]).unwrap();
        let vals = vec!["a", "b", "c"];
        assert_eq!(p.apply_values(&vals), vec!["b", "c", "a"]);
    }

    #[test]
    fn original_order_is_identity() {
        let g = sample();
        let p = OriginalOrder.compute(&g);
        assert!(p.is_identity());
        assert_eq!(OriginalOrder.name(), "Original");
    }
}
