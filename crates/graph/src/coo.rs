//! Coordinate (COO) edge-list representation.
//!
//! GraphGrind processes dense frontiers from a COO whose edge order is a
//! tuning knob: CSR order (sorted by source, then destination) or Hilbert
//! space-filling-curve order (§V-G of the paper). The reordering itself
//! lives in `vebo-partition::edge_order`; this module is the plain storage.

use crate::graph::Graph;
use crate::types::VertexId;

/// Struct-of-arrays edge list: edge `e` is `(src[e], dst[e])`.
///
/// SoA (rather than `Vec<(u32, u32)>`) keeps each stream contiguous, which
/// matters for the COO traversal loops that read millions of edges linearly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Coo {
    src: Vec<VertexId>,
    dst: Vec<VertexId>,
    num_vertices: usize,
}

impl Coo {
    /// Creates a COO from parallel source/destination arrays.
    pub fn new(num_vertices: usize, src: Vec<VertexId>, dst: Vec<VertexId>) -> Coo {
        assert_eq!(src.len(), dst.len(), "src/dst arrays must be parallel");
        debug_assert!(src.iter().all(|&u| (u as usize) < num_vertices));
        debug_assert!(dst.iter().all(|&v| (v as usize) < num_vertices));
        Coo {
            src,
            dst,
            num_vertices,
        }
    }

    /// Extracts the full edge list of a graph in CSR order
    /// (ascending source, then ascending destination).
    pub fn from_graph(g: &Graph) -> Coo {
        let m = g.num_edges();
        let mut src = Vec::with_capacity(m);
        let mut dst = Vec::with_capacity(m);
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                src.push(u);
                dst.push(v);
            }
        }
        Coo {
            src,
            dst,
            num_vertices: g.num_vertices(),
        }
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Source array.
    #[inline]
    pub fn src(&self) -> &[VertexId] {
        &self.src
    }

    /// Destination array.
    #[inline]
    pub fn dst(&self) -> &[VertexId] {
        &self.dst
    }

    /// Edge `e` as a pair.
    #[inline]
    pub fn edge(&self, e: usize) -> (VertexId, VertexId) {
        (self.src[e], self.dst[e])
    }

    /// Iterates `(src, dst)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.src.iter().copied().zip(self.dst.iter().copied())
    }

    /// Reorders edges in place according to `perm`, where `perm[k]` is the
    /// index (in the current storage) of the edge that should end up at
    /// position `k`.
    pub fn reorder_edges(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.num_edges());
        let src: Vec<VertexId> = perm.iter().map(|&e| self.src[e]).collect();
        let dst: Vec<VertexId> = perm.iter().map(|&e| self.dst[e]).collect();
        self.src = src;
        self.dst = dst;
    }

    /// Returns a sorted multiset of the edges, useful for order-insensitive
    /// equality in tests.
    pub fn canonical_edges(&self) -> Vec<(VertexId, VertexId)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Graph {
        Graph::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0)], true)
    }

    #[test]
    fn from_graph_is_csr_order() {
        let coo = Coo::from_graph(&g());
        let edges: Vec<_> = coo.iter().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (2, 3), (3, 0)]);
    }

    #[test]
    fn edge_accessor_matches_iter() {
        let coo = Coo::from_graph(&g());
        for (e, pair) in coo.iter().enumerate() {
            assert_eq!(coo.edge(e), pair);
        }
    }

    #[test]
    fn reorder_edges_permutes_pairs_together() {
        let mut coo = Coo::from_graph(&g());
        coo.reorder_edges(&[3, 2, 1, 0]);
        let edges: Vec<_> = coo.iter().collect();
        assert_eq!(edges, vec![(3, 0), (2, 3), (0, 2), (0, 1)]);
    }

    #[test]
    fn reorder_preserves_edge_multiset() {
        let mut coo = Coo::from_graph(&g());
        let before = coo.canonical_edges();
        coo.reorder_edges(&[1, 3, 0, 2]);
        assert_eq!(coo.canonical_edges(), before);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_arrays_panic() {
        Coo::new(3, vec![0, 1], vec![2]);
    }
}
