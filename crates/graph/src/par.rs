//! Parallelism support for the reorder pipeline.
//!
//! Two things live here:
//!
//! * [`ParMode`] — the policy knob threaded through the CSR builder,
//!   [`crate::Permutation::apply_graph`], and VEBO's blocked placement.
//!   `Auto` (the default everywhere) picks the parallel path only when the
//!   input is large enough to amortize thread startup *and* more than one
//!   rayon thread is configured, so unit tests and tiny graphs keep the
//!   exact sequential code path.
//! * [`SharedSlice`] — the unsafe scatter primitive the parallel paths
//!   share: a `Sync` view of a mutable slice that threads write through at
//!   provably disjoint indices (counting-sort slots, permutation targets,
//!   partition segments). Every parallel algorithm in the workspace that
//!   needs "scatter to disjoint positions" goes through this one audited
//!   type instead of hand-rolling raw pointers.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// How a parallelizable stage should execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ParMode {
    /// Parallel when the input is large and >1 rayon thread is available.
    #[default]
    Auto,
    /// Always the sequential reference path.
    Sequential,
    /// Always the parallel path (even on small inputs; used by tests).
    Parallel,
}

/// Inputs below this many elements never parallelize under
/// [`ParMode::Auto`]: thread startup costs tens of microseconds, which
/// dominates counting sorts of this size.
pub const AUTO_PAR_THRESHOLD: usize = 1 << 15;

impl ParMode {
    /// Whether a stage over `len` elements should run in parallel.
    #[inline]
    pub fn go_parallel(self, len: usize) -> bool {
        match self {
            ParMode::Sequential => false,
            ParMode::Parallel => true,
            ParMode::Auto => len >= AUTO_PAR_THRESHOLD && rayon::current_num_threads() > 1,
        }
    }
}

/// A `Sync` view over a mutable slice for disjoint parallel scatters.
///
/// Construction borrows the slice mutably, so no other access can exist
/// while the view is alive; the *caller* guarantees that concurrent
/// [`SharedSlice::write`] / [`SharedSlice::slice_mut`] calls touch
/// disjoint index ranges.
pub struct SharedSlice<'a, T> {
    data: *const UnsafeCell<T>,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the only operations are unsafe writes/borrows whose disjointness
// the caller guarantees; the view itself carries no thread-local state.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps `slice` for the duration of a parallel scatter.
    pub fn new(slice: &'a mut [T]) -> SharedSlice<'a, T> {
        SharedSlice {
            len: slice.len(),
            data: slice.as_mut_ptr() as *const UnsafeCell<T>,
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds, and no other thread may read or write index
    /// `i` while this scatter is in flight.
    #[inline]
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        // SAFETY: in bounds per the contract; exclusivity per the contract.
        unsafe { *(*self.data.add(i)).get() = value }
    }

    /// Reborrows `start..end` mutably.
    ///
    /// # Safety
    ///
    /// The range must be in bounds and disjoint from every range any other
    /// thread borrows or writes while this scatter is in flight.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, end: usize) -> &mut [T] {
        debug_assert!(start <= end && end <= self.len);
        // SAFETY: in bounds and exclusive per the contract.
        unsafe { std::slice::from_raw_parts_mut((*self.data.add(start)).get(), end - start) }
    }
}

/// Splits `0..num_items` into at most `max_chunks` contiguous ranges of
/// near-equal *weight*, where item `i`'s cumulative weight is
/// `cumulative[i + 1]` (a prefix-sum array like CSR offsets). Used to hand
/// each thread an equal share of edges rather than an equal share of
/// vertices, which matters on power-law degree distributions.
pub fn weighted_ranges(cumulative: &[usize], max_chunks: usize) -> Vec<std::ops::Range<usize>> {
    let num_items = cumulative.len().saturating_sub(1);
    let total = *cumulative.last().unwrap_or(&0);
    let chunks = max_chunks.max(1).min(num_items.max(1));
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for c in 1..=chunks {
        if start >= num_items {
            break;
        }
        let target = total * c / chunks;
        // First boundary with cumulative weight >= target, but always make
        // progress by at least one item.
        let mut end = cumulative.partition_point(|&w| w < target).max(start + 1);
        if c == chunks {
            end = num_items;
        }
        let end = end.min(num_items);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn auto_mode_gates_on_size() {
        assert!(!ParMode::Auto.go_parallel(10));
        assert!(!ParMode::Sequential.go_parallel(usize::MAX));
        assert!(ParMode::Parallel.go_parallel(0));
    }

    #[test]
    fn shared_slice_disjoint_parallel_writes() {
        let mut v = vec![0u64; 100_000];
        let shared = SharedSlice::new(&mut v);
        (0..100_000usize).into_par_iter().for_each(|i| {
            // SAFETY: each index is written by exactly one iteration.
            unsafe { shared.write(i, i as u64 * 3) };
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64 * 3);
        }
    }

    #[test]
    fn shared_slice_disjoint_subslices() {
        let mut v = vec![0u32; 1000];
        let shared = SharedSlice::new(&mut v);
        (0..10usize).into_par_iter().for_each(|c| {
            // SAFETY: ranges [100c, 100c+100) are pairwise disjoint.
            let chunk = unsafe { shared.slice_mut(c * 100, (c + 1) * 100) };
            chunk.fill(c as u32);
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x as usize, i / 100);
        }
    }

    #[test]
    fn weighted_ranges_cover_and_balance() {
        // Skewed weights: one heavy item then a long tail.
        let weights: Vec<usize> = std::iter::once(1000)
            .chain(std::iter::repeat_n(1, 999))
            .collect();
        let mut cumulative = vec![0usize];
        for &w in &weights {
            cumulative.push(cumulative.last().unwrap() + w);
        }
        let ranges = weighted_ranges(&cumulative, 4);
        assert!(ranges.len() <= 4 && !ranges.is_empty());
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 1000);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn weighted_ranges_handles_empty() {
        assert!(weighted_ranges(&[0], 8).is_empty() || weighted_ranges(&[0], 8)[0].is_empty());
        assert!(weighted_ranges(&[], 8).is_empty());
    }
}
