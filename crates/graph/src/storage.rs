//! Storage backends for the flat CSR arrays: owned heap vectors or
//! zero-copy views into a memory-mapped `.vgr` file.
//!
//! [`GraphStorage`] is the abstraction every [`crate::Adjacency`] section
//! (offsets, targets, weights) sits behind:
//!
//! * [`GraphStorage::Owned`] — a plain `Vec<T>`, produced by the
//!   builders, the text parsers, and the buffered binary reader;
//! * [`GraphStorage::Mapped`] — a typed view into an [`Mmap`], produced
//!   by [`crate::io::binary::mmap_binary_graph`] when the on-disk section
//!   is properly aligned for `T` on this platform. Nothing is copied: the
//!   kernel pages the file in on demand and the slice hands out the bytes
//!   in place.
//!
//! Every consumer reads through [`GraphStorage::as_slice`] (or the
//! [`std::ops::Deref`] impl), so the engine's traversal kernels are
//! storage-agnostic: a mapped graph and an owned graph expose identical
//! `&[T]` views and produce bit-identical results.
//!
//! # Fallback copy path
//!
//! Zero-copy reinterpretation of file bytes is only sound when
//!
//! * the host is little-endian (the `.vgr` format is little-endian),
//! * `usize` is 64 bits (offsets are stored as `u64`), and
//! * the section's file offset is a multiple of `align_of::<T>()`
//!   (guaranteed by the v2 aligned layout, violated by v1 files whose
//!   28-byte header leaves the `u64` offsets 4-byte aligned).
//!
//! When any of these fail, the loader transparently falls back to copying
//! the section into an owned `Vec` — same results, one extra copy. See
//! the compatibility matrix in the README's "On-disk formats" section.

use std::fmt;
use std::fs::File;
use std::io;
use std::marker::PhantomData;
use std::path::Path;
use std::sync::Arc;

/// Which backend a storage section (or a whole graph) lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StorageKind {
    /// Heap-allocated `Vec` storage.
    Owned,
    /// Zero-copy view into a memory-mapped file.
    Mapped,
    /// A delta/varint compressed companion representation is attached
    /// (see [`crate::compress::CompressedCsr`]); the engine's hot loops
    /// decode it in place of the plain target array. Reported at the
    /// adjacency/graph level — individual sections are still `Owned` or
    /// `Mapped`.
    Compressed,
}

impl fmt::Display for StorageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StorageKind::Owned => "owned",
            StorageKind::Mapped => "mapped",
            StorageKind::Compressed => "compressed",
        })
    }
}

/// Marker for element types that may be reinterpreted directly from the
/// bytes of a mapped little-endian `.vgr` section.
///
/// # Safety
///
/// Implementors must be `Copy` types with no padding, no invalid bit
/// patterns, and a little-endian-compatible in-memory representation on
/// the platforms where zero-copy mapping is engaged (the loader only
/// takes the mapped path on little-endian 64-bit hosts; everywhere else
/// it copies).
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

// SAFETY: plain fixed-width integers — no padding, every bit pattern
// valid.
unsafe impl Pod for u8 {}
// SAFETY: as above.
unsafe impl Pod for u32 {}
// SAFETY: as above.
unsafe impl Pod for u64 {}
// SAFETY: as above; the loader only maps `usize` sections on 64-bit
// targets where `usize` and the stored `u64` agree in size and alignment.
unsafe impl Pod for usize {}
// SAFETY: every `f32` bit pattern is a valid value (NaN payloads
// included).
unsafe impl Pod for f32 {}

/// A read-only memory mapping of a whole file.
///
/// On 64-bit Unix this is a real `mmap(2)` (`PROT_READ`, `MAP_PRIVATE`)
/// performed through a minimal libc FFI declaration — the workspace
/// vendors no mapping crate, and Rust binaries on these targets already
/// link libc. On every other platform the "map" is a documented fallback
/// that reads the file into an owned buffer, so callers never need to
/// branch on platform: [`Mmap::is_zero_copy`] reports which one you got.
pub struct Mmap {
    inner: MmapInner,
}

#[cfg(all(unix, target_pointer_width = "64"))]
struct MmapInner {
    /// Base of the mapping; null iff `len == 0` (POSIX rejects
    /// zero-length maps, so empty files carry no mapping at all).
    ptr: *mut u8,
    len: usize,
}

#[cfg(not(all(unix, target_pointer_width = "64")))]
struct MmapInner {
    buf: Vec<u8>,
}

// SAFETY: the mapping is read-only and private; sharing immutable access
// across threads is safe.
unsafe impl Send for Mmap {}
// SAFETY: as above.
unsafe impl Sync for Mmap {}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mmap {
    /// Maps the file at `path` read-only.
    pub fn map_path(path: impl AsRef<Path>) -> io::Result<Mmap> {
        Mmap::map(&File::open(path)?)
    }

    /// Maps an open file read-only. The mapping stays valid after the
    /// `File` is dropped (the kernel keeps the pages alive).
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file exceeds usize"))?;
        if len == 0 {
            return Ok(Mmap {
                inner: MmapInner {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                },
            });
        }
        // SAFETY: a fresh private read-only mapping of `len` bytes of an
        // open fd; the result is checked against MAP_FAILED below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            inner: MmapInner {
                ptr: ptr as *mut u8,
                len,
            },
        })
    }

    /// Fallback for platforms without the raw-`mmap` path: reads the
    /// whole file into an owned buffer (the documented copy path).
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::new();
        let mut file = file;
        file.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: MmapInner { buf },
        })
    }

    /// Whether this platform's `map` is a true zero-copy `mmap(2)`.
    pub const fn is_zero_copy() -> bool {
        cfg!(all(unix, target_pointer_width = "64"))
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            if self.inner.len == 0 {
                return &[];
            }
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, unmapped only in Drop.
            unsafe { std::slice::from_raw_parts(self.inner.ptr, self.inner.len) }
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            &self.inner.buf
        }
    }

    /// Number of mapped bytes.
    #[inline]
    pub fn len(&self) -> usize {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            self.inner.len
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            self.inner.buf.len()
        }
    }

    /// Whether the mapping is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for Mmap {
    fn drop(&mut self) {
        if !self.inner.ptr.is_null() {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once.
            unsafe {
                sys::munmap(self.inner.ptr as *mut std::ffi::c_void, self.inner.len);
            }
        }
    }
}

impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("zero_copy", &Self::is_zero_copy())
            .finish()
    }
}

/// A typed, alignment-checked view of `len` elements of `T` starting
/// `byte_offset` bytes into a shared [`Mmap`].
pub struct MappedSlice<T: Pod> {
    map: Arc<Mmap>,
    byte_offset: usize,
    len: usize,
    _elem: PhantomData<T>,
}

impl<T: Pod> MappedSlice<T> {
    /// Builds the view, returning `None` when the section is misaligned
    /// for `T` or does not fit inside the mapping — the caller then takes
    /// the fallback copy path instead.
    ///
    /// Alignment is checked on the *actual in-memory address* of the
    /// section (base pointer plus `byte_offset`), not just the file
    /// offset: a real `mmap` base is page-aligned so the two agree, but
    /// the non-mmap `Mmap` fallback buffer makes no alignment promise.
    pub fn try_new(map: Arc<Mmap>, byte_offset: usize, len: usize) -> Option<MappedSlice<T>> {
        let bytes = len.checked_mul(std::mem::size_of::<T>())?;
        let end = byte_offset.checked_add(bytes)?;
        if end > map.len() {
            return None;
        }
        let addr = map.as_bytes().as_ptr() as usize + byte_offset;
        if !addr.is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(MappedSlice {
            map,
            byte_offset,
            len,
            _elem: PhantomData,
        })
    }

    /// The elements, reinterpreted in place from the mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: the constructor proved the byte range in bounds and
        // aligned for `T`; `T: Pod` makes every bit pattern valid; the
        // mapping is immutable and lives as long as `self.map`.
        unsafe {
            std::slice::from_raw_parts(
                self.map.as_bytes().as_ptr().add(self.byte_offset) as *const T,
                self.len,
            )
        }
    }
}

impl<T: Pod> Clone for MappedSlice<T> {
    fn clone(&self) -> Self {
        MappedSlice {
            map: Arc::clone(&self.map),
            byte_offset: self.byte_offset,
            len: self.len,
            _elem: PhantomData,
        }
    }
}

impl<T: Pod> fmt::Debug for MappedSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedSlice")
            .field("byte_offset", &self.byte_offset)
            .field("len", &self.len)
            .finish()
    }
}

/// One CSR section — offsets, targets, or weights — behind either an
/// owned `Vec` or a zero-copy mapped view.
///
/// Cloning an `Owned` section copies the vector; cloning a `Mapped`
/// section only bumps the mapping's reference count, which is what makes
/// cloning a mapped [`crate::Graph`] (as the harnesses do per profile)
/// nearly free.
#[derive(Clone, Debug)]
pub enum GraphStorage<T: Pod> {
    /// Heap-allocated storage.
    Owned(Vec<T>),
    /// Zero-copy view into a memory-mapped file.
    Mapped(MappedSlice<T>),
}

impl<T: Pod> GraphStorage<T> {
    /// The backing kind.
    #[inline]
    pub fn kind(&self) -> StorageKind {
        match self {
            GraphStorage::Owned(_) => StorageKind::Owned,
            GraphStorage::Mapped(_) => StorageKind::Mapped,
        }
    }

    /// The elements as a plain slice, whatever the backing.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            GraphStorage::Owned(v) => v,
            GraphStorage::Mapped(m) => m.as_slice(),
        }
    }

    /// Converts into an owned vector (a no-op for `Owned`, one copy for
    /// `Mapped`).
    pub fn into_owned(self) -> Vec<T> {
        match self {
            GraphStorage::Owned(v) => v,
            GraphStorage::Mapped(m) => m.as_slice().to_vec(),
        }
    }
}

impl<T: Pod> From<Vec<T>> for GraphStorage<T> {
    fn from(v: Vec<T>) -> Self {
        GraphStorage::Owned(v)
    }
}

impl<T: Pod> std::ops::Deref for GraphStorage<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod + PartialEq> PartialEq for GraphStorage<T> {
    /// Content equality: an owned and a mapped section holding the same
    /// elements compare equal (the conformance suite relies on this).
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("vebo-storage-{name}-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn mmap_reads_file_bytes() {
        let path = temp_file("basic", b"hello mapped world");
        let map = Mmap::map_path(&path).unwrap();
        assert_eq!(map.as_bytes(), b"hello mapped world");
        assert_eq!(map.len(), 18);
        assert!(!map.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_of_empty_file_is_empty() {
        let path = temp_file("empty", b"");
        let map = Mmap::map_path(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_bytes(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_missing_file_errors() {
        assert!(Mmap::map_path("/nonexistent/vebo-no-such-file").is_err());
    }

    #[test]
    fn mapped_slice_reinterprets_aligned_u32s() {
        let mut bytes = Vec::new();
        for v in [1u32, 2, 3, 0xDEAD_BEEF] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = temp_file("u32s", &bytes);
        let map = Arc::new(Mmap::map_path(&path).unwrap());
        let s = MappedSlice::<u32>::try_new(map, 0, 4).unwrap();
        if cfg!(target_endian = "little") {
            assert_eq!(s.as_slice(), &[1, 2, 3, 0xDEAD_BEEF]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_slice_rejects_misalignment_and_overflow() {
        let path = temp_file("misaligned", &[0u8; 64]);
        let map = Arc::new(Mmap::map_path(&path).unwrap());
        // Offset 4 is misaligned for u64.
        assert!(MappedSlice::<u64>::try_new(Arc::clone(&map), 4, 2).is_none());
        // Section runs past the end of the map.
        assert!(MappedSlice::<u64>::try_new(Arc::clone(&map), 0, 9).is_none());
        // Aligned and in-bounds is fine.
        assert!(MappedSlice::<u64>::try_new(map, 8, 7).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn storage_eq_crosses_backings() {
        let bytes: Vec<u8> = [10u32, 20, 30]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let path = temp_file("eq", &bytes);
        let map = Arc::new(Mmap::map_path(&path).unwrap());
        let mapped = GraphStorage::Mapped(MappedSlice::<u32>::try_new(map, 0, 3).unwrap());
        let owned = GraphStorage::Owned(vec![10u32, 20, 30]);
        if cfg!(target_endian = "little") {
            assert_eq!(mapped, owned);
            assert_eq!(&*mapped, &[10, 20, 30]);
        }
        assert_eq!(mapped.kind(), StorageKind::Mapped);
        assert_eq!(owned.kind(), StorageKind::Owned);
        assert_eq!(owned.clone().into_owned(), vec![10, 20, 30]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_mapped_slice_is_fine() {
        let path = temp_file("emptyslice", &[0u8; 16]);
        let map = Arc::new(Mmap::map_path(&path).unwrap());
        let s = MappedSlice::<u64>::try_new(map, 16, 0).unwrap();
        assert_eq!(s.as_slice(), &[] as &[u64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn storage_kind_displays() {
        assert_eq!(StorageKind::Owned.to_string(), "owned");
        assert_eq!(StorageKind::Mapped.to_string(), "mapped");
        assert_eq!(StorageKind::Compressed.to_string(), "compressed");
    }
}
