//! Degree statistics and the Table I graph characterization.

use crate::graph::Graph;
use crate::par::{ParMode, SharedSlice};
use crate::types::VertexId;
use rayon::prelude::*;

/// Per-graph summary matching the columns of Table I in the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct Characterization {
    /// Vertex count.
    pub vertices: usize,
    /// Stored arc count.
    pub edges: usize,
    /// Maximum in-degree ("Max. Degree" in Table I).
    pub max_in_degree: usize,
    /// Vertices with zero in-degree.
    pub zero_in_degree: usize,
    /// Vertices with zero out-degree.
    pub zero_out_degree: usize,
}

impl Characterization {
    /// Percentage of vertices with zero in-degree.
    pub fn pct_zero_in(&self) -> f64 {
        100.0 * self.zero_in_degree as f64 / self.vertices.max(1) as f64
    }

    /// Percentage of vertices with zero out-degree.
    pub fn pct_zero_out(&self) -> f64 {
        100.0 * self.zero_out_degree as f64 / self.vertices.max(1) as f64
    }
}

/// Computes the Table I characterization of a graph.
pub fn characterize(g: &Graph) -> Characterization {
    let mut max_in = 0usize;
    let mut zero_in = 0usize;
    let mut zero_out = 0usize;
    for v in g.vertices() {
        let din = g.in_degree(v);
        max_in = max_in.max(din);
        if din == 0 {
            zero_in += 1;
        }
        if g.out_degree(v) == 0 {
            zero_out += 1;
        }
    }
    Characterization {
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        max_in_degree: max_in,
        zero_in_degree: zero_in,
        zero_out_degree: zero_out,
    }
}

/// In-degrees of every vertex as a dense array.
pub fn in_degrees(g: &Graph) -> Vec<u32> {
    g.vertices().map(|v| g.in_degree(v) as u32).collect()
}

/// Out-degrees of every vertex as a dense array.
pub fn out_degrees(g: &Graph) -> Vec<u32> {
    g.vertices().map(|v| g.out_degree(v) as u32).collect()
}

/// Histogram of in-degrees: `hist[d]` = number of vertices with in-degree
/// `d`. Length is `max_in_degree + 1` (or 1 for an edgeless graph).
/// Parallelizes on large graphs; see [`in_degree_histogram_with`].
pub fn in_degree_histogram(g: &Graph) -> Vec<usize> {
    in_degree_histogram_with(g, ParMode::default())
}

/// Splits `0..n` into one contiguous vertex range per rayon thread,
/// capping the chunk count so the per-chunk histogram scratch
/// (`chunks * buckets` words) stays within a small multiple of `n` even
/// when one hub vertex drives `buckets` toward `n` — the power-law
/// regime this crate targets. Returns `(chunks, per)`; `chunks == 1`
/// means the parallel scratch would not pay for itself.
fn vertex_chunks(n: usize, buckets: usize) -> (usize, usize) {
    let budget = (4 * n.max(1)).div_ceil(buckets.max(1)).max(1);
    let chunks = rayon::current_num_threads().min(budget).clamp(1, n.max(1));
    (chunks, n.div_ceil(chunks))
}

/// Per-chunk in-degree histograms: chunk `c` counts vertices
/// `[c * per, (c + 1) * per)`. The building block of both parallel paths.
fn local_histograms(g: &Graph, buckets: usize, chunks: usize, per: usize) -> Vec<Vec<usize>> {
    let n = g.num_vertices();
    (0..chunks)
        .into_par_iter()
        .map(|c| {
            let mut h = vec![0usize; buckets];
            for v in (c * per)..((c + 1) * per).min(n) {
                h[g.in_degree(v as VertexId)] += 1;
            }
            h
        })
        .collect()
}

/// As [`in_degree_histogram`] with an explicit execution mode. The
/// parallel path builds per-chunk histograms over vertex ranges and merges
/// them per degree; both paths produce identical histograms.
pub fn in_degree_histogram_with(g: &Graph, mode: ParMode) -> Vec<usize> {
    let n = g.num_vertices();
    if !mode.go_parallel(n) {
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
        let mut hist = vec![0usize; max_in + 1];
        for v in g.vertices() {
            hist[g.in_degree(v)] += 1;
        }
        return hist;
    }
    let max_in = (0..n as VertexId)
        .into_par_iter()
        .map(|v| g.in_degree(v))
        .reduce(|| 0, usize::max);
    let buckets = max_in + 1;
    let (chunks, per) = vertex_chunks(n, buckets);
    let locals = local_histograms(g, buckets, chunks, per);
    (0..buckets)
        .into_par_iter()
        .map(|d| locals.iter().map(|l| l[d]).sum::<usize>())
        .collect()
}

/// Vertices sorted by decreasing in-degree — the placement order of VEBO's
/// phase 1. Implemented as a counting sort over the degree histogram, which
/// is the `O(|V|)` "radix-like" sort the paper's complexity analysis (§III-E)
/// relies on. Ties are broken by ascending vertex id for determinism.
/// Parallelizes on large graphs; see [`vertices_by_decreasing_in_degree_with`].
pub fn vertices_by_decreasing_in_degree(g: &Graph) -> Vec<VertexId> {
    vertices_by_decreasing_in_degree_with(g, ParMode::default())
}

/// As [`vertices_by_decreasing_in_degree`] with an explicit execution
/// mode. The parallel path mirrors the CSR builder: per-chunk histograms
/// become per-chunk scatter bases via a prefix pass, so every vertex lands
/// in exactly the slot the sequential counting sort would pick —
/// the two paths are bit-identical (property-tested).
pub fn vertices_by_decreasing_in_degree_with(g: &Graph, mode: ParMode) -> Vec<VertexId> {
    let n = g.num_vertices();
    if !mode.go_parallel(n) {
        let hist = in_degree_histogram_with(g, ParMode::Sequential);
        let buckets = hist.len();
        // start[d] = first output slot for degree d when buckets are laid
        // out from the highest degree down to zero.
        let mut start = vec![0usize; buckets];
        let mut acc = 0usize;
        for d in (0..buckets).rev() {
            start[d] = acc;
            acc += hist[d];
        }
        let mut order = vec![0 as VertexId; n];
        for v in 0..n as VertexId {
            let d = g.in_degree(v);
            order[start[d]] = v;
            start[d] += 1;
        }
        return order;
    }
    let max_in = (0..n as VertexId)
        .into_par_iter()
        .map(|v| g.in_degree(v))
        .reduce(|| 0, usize::max);
    let buckets = max_in + 1;
    let (chunks, per) = vertex_chunks(n, buckets);
    let locals = local_histograms(g, buckets, chunks, per);
    // start[d]: first output slot of degree d (degrees laid out high→low).
    let mut start = vec![0usize; buckets];
    let mut acc = 0usize;
    for d in (0..buckets).rev() {
        start[d] = acc;
        acc += locals.iter().map(|l| l[d]).sum::<usize>();
    }
    // bases[c * buckets + d]: chunk c's first slot for degree d, counting
    // all of degree d's vertices in chunks < c — the same stability rule
    // as the sequential cursor walk (ascending vertex id within a degree).
    let mut bases = vec![0usize; chunks * buckets];
    {
        let shared = SharedSlice::new(&mut bases);
        (0..buckets).into_par_iter().for_each(|d| {
            let mut acc = start[d];
            for (c, l) in locals.iter().enumerate() {
                // SAFETY: slots {c * buckets + d | c} are disjoint per d.
                unsafe { shared.write(c * buckets + d, acc) };
                acc += l[d];
            }
        });
    }
    let mut order = vec![0 as VertexId; n];
    {
        let shared = SharedSlice::new(&mut order);
        (0..chunks).into_par_iter().for_each(|c| {
            let mut cursor = bases[c * buckets..(c + 1) * buckets].to_vec();
            for v in (c * per)..((c + 1) * per).min(n) {
                let d = g.in_degree(v as VertexId);
                // SAFETY: per-chunk cursor ranges partition the output.
                unsafe { shared.write(cursor[d], v as VertexId) };
                cursor[d] += 1;
            }
        });
    }
    order
}

/// Estimates the Zipf exponent `s` of the in-degree distribution by a
/// log-log least-squares fit over the degree histogram (degrees >= 1).
/// Returns `None` when there are fewer than two distinct non-zero degrees.
pub fn estimate_zipf_exponent(g: &Graph) -> Option<f64> {
    let hist = in_degree_histogram(g);
    let pts: Vec<(f64, f64)> = hist
        .iter()
        .enumerate()
        .skip(1)
        .filter(|&(_, &c)| c > 0)
        .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    // Degree counts fall as d^{-alpha}; the paper's s relates to the
    // power-law exponent alpha via alpha = 1 + 1/s (footnote 1).
    let alpha = -slope;
    if alpha <= 1.0 {
        return None;
    }
    Some(1.0 / (alpha - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> Graph {
        // all vertices point at 0
        let edges: Vec<(VertexId, VertexId)> = (1..n as VertexId).map(|u| (u, 0)).collect();
        Graph::from_edges(n, &edges, true)
    }

    #[test]
    fn characterize_star() {
        let g = star(5);
        let c = characterize(&g);
        assert_eq!(c.vertices, 5);
        assert_eq!(c.edges, 4);
        assert_eq!(c.max_in_degree, 4);
        assert_eq!(c.zero_in_degree, 4); // only vertex 0 has in-edges
        assert_eq!(c.zero_out_degree, 1);
        assert!((c.pct_zero_in() - 80.0).abs() < 1e-9);
        assert!((c.pct_zero_out() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = star(7);
        let h = in_degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 7);
        assert_eq!(h[0], 6);
        assert_eq!(h[6], 1);
    }

    #[test]
    fn degree_arrays_match_graph() {
        let g = Graph::from_edges(3, &[(0, 1), (2, 1), (1, 0)], true);
        assert_eq!(in_degrees(&g), vec![1, 2, 0]);
        assert_eq!(out_degrees(&g), vec![1, 1, 1]);
    }

    #[test]
    fn decreasing_degree_order_is_sorted_and_stable() {
        let g = Graph::from_edges(5, &[(1, 0), (2, 0), (3, 0), (0, 1), (2, 1), (0, 4)], true);
        // in-degrees: 0:3, 1:2, 2:0, 3:0, 4:1
        let order = vertices_by_decreasing_in_degree(&g);
        assert_eq!(order, vec![0, 1, 4, 2, 3]);
        let degs: Vec<usize> = order.iter().map(|&v| g.in_degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn decreasing_degree_order_is_permutation() {
        let g = star(9);
        let mut order = vertices_by_decreasing_in_degree(&g);
        order.sort_unstable();
        assert_eq!(order, (0..9).collect::<Vec<VertexId>>());
    }

    #[test]
    fn zipf_estimate_recovers_rough_exponent() {
        // Construct a graph whose in-degree histogram is exactly d^-2
        // shaped: count(d) proportional to d^-2 for d in 1..=8.
        let mut edges = Vec::new();
        let mut next_src = 0u32;
        let mut v = 0u32;
        let counts = [64usize, 16, 7, 4, 2, 1, 1, 1]; // ~ 64/d^2
        let n_vertices: usize = counts.iter().sum::<usize>() + 1000;
        for (d0, &c) in counts.iter().enumerate() {
            let d = d0 + 1;
            for _ in 0..c {
                for _ in 0..d {
                    edges.push((next_src % n_vertices as u32, v));
                    next_src += 1;
                }
                v += 1;
            }
        }
        let g = Graph::from_edges(n_vertices, &edges, true);
        let s = estimate_zipf_exponent(&g).expect("fit should succeed");
        // alpha ~= 2 => s ~= 1
        assert!((0.5..2.0).contains(&s), "s = {s}");
    }

    #[test]
    fn zipf_estimate_none_for_uniform() {
        // A cycle has a single distinct degree: fit is impossible.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], true);
        assert_eq!(estimate_zipf_exponent(&g), None);
    }
}
