//! Degree statistics and the Table I graph characterization.

use crate::graph::Graph;
use crate::types::VertexId;

/// Per-graph summary matching the columns of Table I in the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct Characterization {
    /// Vertex count.
    pub vertices: usize,
    /// Stored arc count.
    pub edges: usize,
    /// Maximum in-degree ("Max. Degree" in Table I).
    pub max_in_degree: usize,
    /// Vertices with zero in-degree.
    pub zero_in_degree: usize,
    /// Vertices with zero out-degree.
    pub zero_out_degree: usize,
}

impl Characterization {
    /// Percentage of vertices with zero in-degree.
    pub fn pct_zero_in(&self) -> f64 {
        100.0 * self.zero_in_degree as f64 / self.vertices.max(1) as f64
    }

    /// Percentage of vertices with zero out-degree.
    pub fn pct_zero_out(&self) -> f64 {
        100.0 * self.zero_out_degree as f64 / self.vertices.max(1) as f64
    }
}

/// Computes the Table I characterization of a graph.
pub fn characterize(g: &Graph) -> Characterization {
    let mut max_in = 0usize;
    let mut zero_in = 0usize;
    let mut zero_out = 0usize;
    for v in g.vertices() {
        let din = g.in_degree(v);
        max_in = max_in.max(din);
        if din == 0 {
            zero_in += 1;
        }
        if g.out_degree(v) == 0 {
            zero_out += 1;
        }
    }
    Characterization {
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        max_in_degree: max_in,
        zero_in_degree: zero_in,
        zero_out_degree: zero_out,
    }
}

/// In-degrees of every vertex as a dense array.
pub fn in_degrees(g: &Graph) -> Vec<u32> {
    g.vertices().map(|v| g.in_degree(v) as u32).collect()
}

/// Out-degrees of every vertex as a dense array.
pub fn out_degrees(g: &Graph) -> Vec<u32> {
    g.vertices().map(|v| g.out_degree(v) as u32).collect()
}

/// Histogram of in-degrees: `hist[d]` = number of vertices with in-degree
/// `d`. Length is `max_in_degree + 1` (or 1 for an edgeless graph).
pub fn in_degree_histogram(g: &Graph) -> Vec<usize> {
    let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_in + 1];
    for v in g.vertices() {
        hist[g.in_degree(v)] += 1;
    }
    hist
}

/// Vertices sorted by decreasing in-degree — the placement order of VEBO's
/// phase 1. Implemented as a counting sort over the degree histogram, which
/// is the `O(|V|)` "radix-like" sort the paper's complexity analysis (§III-E)
/// relies on. Ties are broken by ascending vertex id for determinism.
pub fn vertices_by_decreasing_in_degree(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let hist = in_degree_histogram(g);
    let buckets = hist.len();
    // start[d] = first output slot for degree d when buckets are laid out
    // from the highest degree down to zero.
    let mut start = vec![0usize; buckets];
    let mut acc = 0usize;
    for d in (0..buckets).rev() {
        start[d] = acc;
        acc += hist[d];
    }
    let mut order = vec![0 as VertexId; n];
    for v in 0..n as VertexId {
        let d = g.in_degree(v);
        order[start[d]] = v;
        start[d] += 1;
    }
    order
}

/// Estimates the Zipf exponent `s` of the in-degree distribution by a
/// log-log least-squares fit over the degree histogram (degrees >= 1).
/// Returns `None` when there are fewer than two distinct non-zero degrees.
pub fn estimate_zipf_exponent(g: &Graph) -> Option<f64> {
    let hist = in_degree_histogram(g);
    let pts: Vec<(f64, f64)> = hist
        .iter()
        .enumerate()
        .skip(1)
        .filter(|&(_, &c)| c > 0)
        .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    // Degree counts fall as d^{-alpha}; the paper's s relates to the
    // power-law exponent alpha via alpha = 1 + 1/s (footnote 1).
    let alpha = -slope;
    if alpha <= 1.0 {
        return None;
    }
    Some(1.0 / (alpha - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> Graph {
        // all vertices point at 0
        let edges: Vec<(VertexId, VertexId)> = (1..n as VertexId).map(|u| (u, 0)).collect();
        Graph::from_edges(n, &edges, true)
    }

    #[test]
    fn characterize_star() {
        let g = star(5);
        let c = characterize(&g);
        assert_eq!(c.vertices, 5);
        assert_eq!(c.edges, 4);
        assert_eq!(c.max_in_degree, 4);
        assert_eq!(c.zero_in_degree, 4); // only vertex 0 has in-edges
        assert_eq!(c.zero_out_degree, 1);
        assert!((c.pct_zero_in() - 80.0).abs() < 1e-9);
        assert!((c.pct_zero_out() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = star(7);
        let h = in_degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 7);
        assert_eq!(h[0], 6);
        assert_eq!(h[6], 1);
    }

    #[test]
    fn degree_arrays_match_graph() {
        let g = Graph::from_edges(3, &[(0, 1), (2, 1), (1, 0)], true);
        assert_eq!(in_degrees(&g), vec![1, 2, 0]);
        assert_eq!(out_degrees(&g), vec![1, 1, 1]);
    }

    #[test]
    fn decreasing_degree_order_is_sorted_and_stable() {
        let g = Graph::from_edges(5, &[(1, 0), (2, 0), (3, 0), (0, 1), (2, 1), (0, 4)], true);
        // in-degrees: 0:3, 1:2, 2:0, 3:0, 4:1
        let order = vertices_by_decreasing_in_degree(&g);
        assert_eq!(order, vec![0, 1, 4, 2, 3]);
        let degs: Vec<usize> = order.iter().map(|&v| g.in_degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn decreasing_degree_order_is_permutation() {
        let g = star(9);
        let mut order = vertices_by_decreasing_in_degree(&g);
        order.sort_unstable();
        assert_eq!(order, (0..9).collect::<Vec<VertexId>>());
    }

    #[test]
    fn zipf_estimate_recovers_rough_exponent() {
        // Construct a graph whose in-degree histogram is exactly d^-2
        // shaped: count(d) proportional to d^-2 for d in 1..=8.
        let mut edges = Vec::new();
        let mut next_src = 0u32;
        let mut v = 0u32;
        let counts = [64usize, 16, 7, 4, 2, 1, 1, 1]; // ~ 64/d^2
        let n_vertices: usize = counts.iter().sum::<usize>() + 1000;
        for (d0, &c) in counts.iter().enumerate() {
            let d = d0 + 1;
            for _ in 0..c {
                for _ in 0..d {
                    edges.push((next_src % n_vertices as u32, v));
                    next_src += 1;
                }
                v += 1;
            }
        }
        let g = Graph::from_edges(n_vertices, &edges, true);
        let s = estimate_zipf_exponent(&g).expect("fit should succeed");
        // alpha ~= 2 => s ~= 1
        assert!((0.5..2.0).contains(&s), "s = {s}");
    }

    #[test]
    fn zipf_estimate_none_for_uniform() {
        // A cycle has a single distinct degree: fit is impossible.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], true);
        assert_eq!(estimate_zipf_exponent(&g), None);
    }
}
