//! Fundamental identifier types shared across the workspace.

/// Identifier of a vertex.
///
/// 32 bits suffice for every graph in the paper's evaluation (the largest,
/// RMAT27, has 134M vertices) while halving the memory traffic of adjacency
/// arrays compared to `usize` — the dominant cost in graph traversal.
pub type VertexId = u32;

/// Index of an edge (arc) within a CSR/CSC/COO edge array.
pub type EdgeId = usize;

/// Errors produced when constructing or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is `>= num_vertices`.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: u64,
        /// The graph's vertex count.
        num_vertices: usize,
    },
    /// CSR offsets are not monotonically non-decreasing.
    NonMonotonicOffsets {
        /// First offending index.
        index: usize,
    },
    /// The offsets array does not terminate at the edge count.
    OffsetsEdgeMismatch {
        /// Value of the final offset.
        last_offset: usize,
        /// Actual number of stored edges.
        num_edges: usize,
    },
    /// A permutation is not a bijection on `0..n`.
    InvalidPermutation {
        /// What was wrong.
        reason: &'static str,
    },
    /// A parse error in graph I/O.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An out-of-range endpoint found while parsing a text format. Unlike
    /// [`GraphError::VertexOutOfRange`] (construction-time validation),
    /// this carries the offending 1-based line of the input file.
    VertexOutOfRangeAt {
        /// 1-based line number.
        line: usize,
        /// The offending endpoint.
        vertex: u64,
        /// The maximum representable / declared vertex count.
        num_vertices: usize,
    },
    /// Binary graph input does not start with the `.vgr` magic bytes.
    BadMagic,
    /// Binary graph input has the right magic but an unsupported version.
    UnsupportedVersion {
        /// The version field found in the header.
        version: u32,
    },
    /// Binary graph input ended before a section was complete.
    TruncatedBinary {
        /// Which section was being read (`"header"`, `"offsets"`, ...).
        section: &'static str,
        /// Bytes the section requires.
        expected_bytes: usize,
        /// Bytes actually available.
        found_bytes: usize,
    },
    /// A dynamic graph still has buffered mutations where a delta-free
    /// snapshot is required (e.g. adopting an mmapped file into the
    /// handle). Compact or save first.
    DirtyDynamicGraph {
        /// Buffered mutations standing in the way.
        pending: usize,
    },
    /// An edge mutation was attempted on a dynamic graph whose snapshot
    /// carries edge weights. Mutation semantics are defined for
    /// unweighted graphs only; weighted snapshots stay read-only.
    WeightedMutation,
    /// A dynamic graph's bounded delta log is at capacity: the mutation
    /// was refused so the log cannot grow without bound while compaction
    /// is behind. Retry after a compaction drains the log.
    DeltaLogFull {
        /// Mutations currently buffered.
        pending: usize,
        /// The configured log bound.
        capacity: usize,
    },
    /// An I/O failure wrapped as a string (keeps the error type `Clone`).
    Io(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => {
                write!(f, "vertex {vertex} out of range (n = {num_vertices})")
            }
            GraphError::NonMonotonicOffsets { index } => {
                write!(f, "offsets array decreases at index {index}")
            }
            GraphError::OffsetsEdgeMismatch {
                last_offset,
                num_edges,
            } => {
                write!(
                    f,
                    "offsets end at {last_offset} but there are {num_edges} edges"
                )
            }
            GraphError::InvalidPermutation { reason } => {
                write!(f, "invalid permutation: {reason}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::VertexOutOfRangeAt {
                line,
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "parse error on line {line}: vertex {vertex} out of range (n = {num_vertices})"
                )
            }
            GraphError::BadMagic => {
                write!(f, "not a binary graph file (bad magic bytes)")
            }
            GraphError::UnsupportedVersion { version } => {
                write!(f, "unsupported binary graph version {version}")
            }
            GraphError::TruncatedBinary {
                section,
                expected_bytes,
                found_bytes,
            } => {
                write!(
                    f,
                    "truncated binary graph: {section} needs {expected_bytes} bytes, \
                     found {found_bytes}"
                )
            }
            GraphError::DirtyDynamicGraph { pending } => {
                write!(
                    f,
                    "dynamic graph is dirty: {pending} buffered mutation(s) \
                     require a compaction before a delta-free snapshot exists"
                )
            }
            GraphError::WeightedMutation => {
                write!(
                    f,
                    "edge mutations are defined for unweighted graphs only; \
                     this snapshot carries weights"
                )
            }
            GraphError::DeltaLogFull { pending, capacity } => {
                write!(
                    f,
                    "delta log full: {pending} buffered mutation(s) at \
                     capacity {capacity}; retry after compaction"
                )
            }
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("vertex 9"));
        assert!(e.to_string().contains("n = 4"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn vertex_id_is_32_bits() {
        // The paper's largest graph (RMAT27: 134M vertices) must fit.
        assert!(std::mem::size_of::<VertexId>() == 4);
        assert!(134_000_000u64 <= VertexId::MAX as u64);
    }
}
