//! Graph I/O: plain edge lists and the Ligra `AdjacencyGraph` text format.
//!
//! The Ligra format (used by all three frameworks in the paper's artifact)
//! is:
//!
//! ```text
//! AdjacencyGraph
//! <n>
//! <m>
//! <offset 0> ... <offset n-1>
//! <edge 0> ... <edge m-1>
//! ```

use crate::adjacency::Adjacency;
use crate::graph::Graph;
use crate::types::{GraphError, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes a graph as a whitespace edge list (`src dst` per line, `#`
/// comments allowed when reading back).
pub fn write_edge_list<W: Write>(g: &Graph, w: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "# vertices {} edges {} directed {}",
        g.num_vertices(),
        g.num_edges(),
        g.is_directed()
    )?;
    for u in g.vertices() {
        for &v in g.out_neighbors(u) {
            writeln!(w, "{u} {v}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a whitespace edge list. `num_vertices` is inferred as
/// `max endpoint + 1` unless a larger value is supplied.
pub fn read_edge_list<R: Read>(
    r: R,
    directed: bool,
    min_vertices: Option<usize>,
) -> Result<Graph, GraphError> {
    let r = BufReader::new(r);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_v: u64 = 0;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |tok: Option<&str>, lineno: usize| -> Result<u64, GraphError> {
            tok.ok_or(GraphError::Parse {
                line: lineno + 1,
                message: "missing endpoint".into(),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: e.to_string(),
            })
        };
        let u = parse(it.next(), lineno)?;
        let v = parse(it.next(), lineno)?;
        if u > VertexId::MAX as u64 || v > VertexId::MAX as u64 {
            return Err(GraphError::VertexOutOfRange {
                vertex: u.max(v),
                num_vertices: VertexId::MAX as usize,
            });
        }
        max_v = max_v.max(u).max(v);
        edges.push((u as VertexId, v as VertexId));
    }
    let n = (max_v as usize + 1)
        .max(min_vertices.unwrap_or(0))
        .max(if edges.is_empty() { 0 } else { 1 });
    Ok(Graph::from_edges(n, &edges, directed))
}

/// Writes the Ligra `AdjacencyGraph` format.
pub fn write_adjacency_graph<W: Write>(g: &Graph, w: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "AdjacencyGraph")?;
    writeln!(w, "{}", g.num_vertices())?;
    writeln!(w, "{}", g.num_edges())?;
    for v in g.vertices() {
        writeln!(w, "{}", g.csr().edge_start(v))?;
    }
    for &t in g.csr().targets() {
        writeln!(w, "{t}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the Ligra `AdjacencyGraph` format.
pub fn read_adjacency_graph<R: Read>(r: R, directed: bool) -> Result<Graph, GraphError> {
    let r = BufReader::new(r);
    let mut tokens = Vec::new();
    let mut header_seen = false;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if !header_seen {
            if t != "AdjacencyGraph" {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: format!("expected 'AdjacencyGraph' header, got '{t}'"),
                });
            }
            header_seen = true;
            continue;
        }
        for tok in t.split_whitespace() {
            let v: usize = tok
                .parse()
                .map_err(|e: std::num::ParseIntError| GraphError::Parse {
                    line: lineno + 1,
                    message: e.to_string(),
                })?;
            tokens.push(v);
        }
    }
    if tokens.len() < 2 {
        return Err(GraphError::Parse {
            line: 0,
            message: "truncated file".into(),
        });
    }
    let n = tokens[0];
    let m = tokens[1];
    if tokens.len() != 2 + n + m {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("expected {} tokens, found {}", 2 + n + m, tokens.len()),
        });
    }
    let mut offsets: Vec<usize> = tokens[2..2 + n].to_vec();
    offsets.push(m);
    let targets: Vec<VertexId> = tokens[2 + n..]
        .iter()
        .map(|&t| {
            if t >= n {
                Err(GraphError::VertexOutOfRange {
                    vertex: t as u64,
                    num_vertices: n,
                })
            } else {
                Ok(t as VertexId)
            }
        })
        .collect::<Result<_, _>>()?;
    let out = Adjacency::from_raw(offsets, targets, None)?;
    let into = out.transpose();
    Graph::from_parts(out, into, directed)
}

/// Convenience wrapper: writes an edge list to a file path.
pub fn save_edge_list(g: &Graph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Convenience wrapper: reads an edge list from a file path.
pub fn load_edge_list(path: impl AsRef<Path>, directed: bool) -> Result<Graph, GraphError> {
    read_edge_list(std::fs::File::open(path)?, directed, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (3, 4), (4, 0)], true)
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..], true, None).unwrap();
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.csr().targets(), h.csr().targets());
        assert_eq!(g.csr().offsets(), h.csr().offsets());
    }

    #[test]
    fn edge_list_skips_comments() {
        let text = "# hello\n% pct comment\n0 1\n\n1 2\n";
        let g = read_edge_list(text.as_bytes(), true, None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_reports_parse_errors_with_line() {
        let text = "0 1\nbroken\n";
        let err = read_edge_list(text.as_bytes(), true, None).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn edge_list_min_vertices_pads() {
        let g = read_edge_list("0 1\n".as_bytes(), true, Some(10)).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn adjacency_graph_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_adjacency_graph(&g, &mut buf).unwrap();
        let h = read_adjacency_graph(&buf[..], true).unwrap();
        assert_eq!(g.csr().offsets(), h.csr().offsets());
        assert_eq!(g.csr().targets(), h.csr().targets());
    }

    #[test]
    fn adjacency_graph_rejects_wrong_header() {
        let err = read_adjacency_graph("WeightedThing\n1\n0\n0\n".as_bytes(), true).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn adjacency_graph_rejects_token_mismatch() {
        let err = read_adjacency_graph("AdjacencyGraph\n2\n1\n0\n".as_bytes(), true).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("vebo_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");
        save_edge_list(&g, &path).unwrap();
        let h = load_edge_list(&path, true).unwrap();
        assert_eq!(g.csr().targets(), h.csr().targets());
        std::fs::remove_file(&path).ok();
    }
}
