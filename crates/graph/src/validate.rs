//! Structural validation of graphs — used by tests and after permutation /
//! partitioning steps to catch representation bugs early.

use crate::graph::Graph;
use crate::types::GraphError;

/// Checks all representation invariants of a [`Graph`]:
/// offsets monotone and terminating at `m`, targets in range, CSC equal to
/// the transpose of the CSR, sorted neighbor lists, and (for undirected
/// graphs) symmetry.
pub fn check(g: &Graph) -> Result<(), GraphError> {
    let n = g.num_vertices();
    for adj in [g.csr(), g.csc()] {
        let off = adj.offsets();
        if off.len() != n + 1 {
            return Err(GraphError::OffsetsEdgeMismatch {
                last_offset: off.len(),
                num_edges: n + 1,
            });
        }
        for i in 1..off.len() {
            if off[i] < off[i - 1] {
                return Err(GraphError::NonMonotonicOffsets { index: i });
            }
        }
        if *off.last().unwrap() != adj.num_edges() {
            return Err(GraphError::OffsetsEdgeMismatch {
                last_offset: *off.last().unwrap(),
                num_edges: adj.num_edges(),
            });
        }
        for &t in adj.targets() {
            if t as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: t as u64,
                    num_vertices: n,
                });
            }
        }
        for v in 0..n as u32 {
            let nb = adj.neighbors(v);
            if !nb.windows(2).all(|w| w[0] <= w[1]) {
                return Err(GraphError::InvalidPermutation {
                    reason: "unsorted neighbor list",
                });
            }
        }
    }
    if g.csr().transpose() != *g.csc() {
        return Err(GraphError::InvalidPermutation {
            reason: "CSC is not the transpose of CSR",
        });
    }
    if !g.is_directed() && g.csr() != g.csc() {
        return Err(GraphError::InvalidPermutation {
            reason: "undirected graph is not symmetric",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Dataset;

    #[test]
    fn valid_graphs_pass() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (3, 0)], true);
        assert!(check(&g).is_ok());
    }

    #[test]
    fn all_datasets_validate() {
        for d in Dataset::ALL {
            let g = d.build(0.05);
            assert!(check(&g).is_ok(), "{} failed validation", d.name());
        }
    }

    #[test]
    fn undirected_datasets_are_symmetric() {
        let g = Dataset::OrkutLike.build(0.05);
        assert!(!g.is_directed());
        assert!(check(&g).is_ok());
    }
}
