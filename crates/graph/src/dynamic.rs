//! Mutable graphs: an immutable CSR snapshot plus a delta buffer of edge
//! inserts/deletes, compacted off the hot path and republished by an
//! atomic [`Arc`] swap.
//!
//! The static [`Graph`] stays the storage substrate — owned, mapped, and
//! compressed backings are all valid snapshots. [`DynamicGraph`] wraps
//! one behind an epoch-versioned publication slot and buffers mutations
//! in an ordered operation log:
//!
//! * **Mutations** ([`DynamicGraph::insert_edge`] /
//!   [`DynamicGraph::delete_edge`]) only append to the log under a
//!   dedicated mutex; they never touch the snapshot and never block
//!   readers.
//! * **Pinning** ([`DynamicGraph::pin`]) captures a consistent
//!   `(snapshot, delta overlay, epoch)` triple. The returned
//!   [`PinnedEpoch`] holds plain `Arc`s, so once pinned a query reads
//!   entirely lock-free — compactions publishing newer epochs cannot
//!   invalidate or block it.
//! * **Compaction** ([`DynamicGraph::compact`]) merges the buffered
//!   mutations into a fresh CSR/CSC pair *off-lock*, then publishes the
//!   new snapshot with a single pointer-sized `Arc` swap under the write
//!   side of the slot (held only for the swap itself). In-flight pins
//!   keep their old epoch; new pins see the new one.
//!
//! Mutation semantics are those of a simple edge set: inserting an arc
//! that is already present (in the snapshot or earlier in the log) is a
//! no-op, deleting removes one stored occurrence, and on undirected
//! graphs both mirrored arcs are maintained together (a self-loop stays
//! a single stored arc, matching [`Graph::from_edges`]). Vertex count is
//! fixed at construction. Weighted snapshots may be *wrapped* (so a
//! weighted dataset can still be served read-only through the versioned
//! handle) but refuse mutations with
//! [`GraphError::WeightedMutation`] — every weighted algorithm in the
//! workspace runs on static snapshots.
//!
//! The delta log can be bounded ([`DynamicGraph::set_log_capacity`]):
//! once full, mutations fail with [`GraphError::DeltaLogFull`] instead
//! of growing without bound while compaction is behind — the serving
//! layer surfaces this as backpressure (a BUSY reply) rather than
//! unbounded memory growth.
//!
//! For serving, compaction moves off the mutation path entirely: a
//! [`Compactor`] owns a dedicated thread that runs compaction cycles on
//! request, so mutators only append to the log, signal, and return.
//! [`DynamicGraph::compact_prepare`] /
//! [`PendingCompaction::commit`] split one cycle into the expensive
//! lock-free rebuild and the brief publication, letting callers hang
//! extra work (placement recompute, state republication) between the
//! two while the compaction gate stays held.
//!
//! Compaction is bit-reproducible: the merged neighbor lists are exactly
//! what [`Graph::from_edges`]-style reconstruction from the final edge
//! set produces (sorted ascending per vertex), which the
//! `dynamic_props.rs` property suite checks for both adjacency halves
//! and for the re-encoded compressed companion.

use crate::adjacency::Adjacency;
use crate::graph::Graph;
use crate::io::binary::{mmap_binary_graph, write_binary_graph};
use crate::types::{GraphError, VertexId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

/// One buffered mutation, in arrival order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeMut {
    /// Insert the edge `(u, v)` (both arcs on undirected graphs).
    Insert(VertexId, VertexId),
    /// Delete the edge `(u, v)` (both arcs on undirected graphs).
    Delete(VertexId, VertexId),
}

/// Per-direction delta overlay half: the *fully merged* neighbor list of
/// every vertex whose adjacency differs from the snapshot. Vertices not
/// present read straight from the snapshot, so the overlay's memory
/// footprint is proportional to the touched neighborhood, not the graph.
#[derive(Clone, Debug, Default)]
pub struct OverlayHalf {
    merged: HashMap<VertexId, Vec<VertexId>>,
}

impl OverlayHalf {
    /// The merged (snapshot + delta) neighbor list of `v`, if `v` is
    /// dirty in this direction; `None` means the snapshot list is
    /// current.
    #[inline]
    pub fn merged(&self, v: VertexId) -> Option<&[VertexId]> {
        self.merged.get(&v).map(|l| l.as_slice())
    }

    /// Number of dirty vertices in this direction.
    pub fn len(&self) -> usize {
        self.merged.len()
    }

    /// `true` when no vertex is dirty in this direction.
    pub fn is_empty(&self) -> bool {
        self.merged.is_empty()
    }
}

/// The delta overlay of one pinned epoch: merged neighbor lists for the
/// dirty vertices of both adjacency halves. This is the structure the
/// engine's overlay scan consults before falling back to the snapshot
/// CSR/CSC (see `vebo_engine::edge_map`).
#[derive(Clone, Debug, Default)]
pub struct DeltaOverlay {
    out: OverlayHalf,
    into: OverlayHalf,
    pending: usize,
}

impl DeltaOverlay {
    /// The overlay of a delta-free epoch.
    pub fn empty() -> DeltaOverlay {
        DeltaOverlay::default()
    }

    /// Out-direction (CSR) half, indexed by source.
    #[inline]
    pub fn out(&self) -> &OverlayHalf {
        &self.out
    }

    /// In-direction (CSC) half, indexed by destination.
    #[inline]
    pub fn inbound(&self) -> &OverlayHalf {
        &self.into
    }

    /// Buffered mutations this overlay covers.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// `true` when the overlay changes nothing (the epoch is delta-free).
    pub fn is_empty(&self) -> bool {
        self.out.is_empty() && self.into.is_empty()
    }

    /// Overlay-aware out-neighbor list of `v` against snapshot `g`.
    #[inline]
    pub fn out_neighbors<'a>(&'a self, g: &'a Graph, v: VertexId) -> &'a [VertexId] {
        self.out.merged(v).unwrap_or_else(|| g.out_neighbors(v))
    }

    /// Overlay-aware in-neighbor list of `v` against snapshot `g`.
    #[inline]
    pub fn in_neighbors<'a>(&'a self, g: &'a Graph, v: VertexId) -> &'a [VertexId] {
        self.into.merged(v).unwrap_or_else(|| g.in_neighbors(v))
    }

    /// Overlay-aware out-degree of `v` against snapshot `g`.
    #[inline]
    pub fn out_degree(&self, g: &Graph, v: VertexId) -> usize {
        match self.out.merged(v) {
            Some(list) => list.len(),
            None => g.out_degree(v),
        }
    }
}

/// A consistent, lock-free view of one epoch of a [`DynamicGraph`]:
/// the immutable snapshot, the delta overlay of mutations buffered when
/// the pin was taken, and the epoch number. Cloning shares the `Arc`s.
///
/// A pin stays fully readable while later mutations and compactions run;
/// it simply describes an older version of the graph.
#[derive(Clone, Debug)]
pub struct PinnedEpoch {
    snapshot: Arc<Graph>,
    overlay: Arc<DeltaOverlay>,
    epoch: u64,
}

impl PinnedEpoch {
    /// The immutable CSR snapshot of this epoch.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.snapshot
    }

    /// The snapshot as a shared handle.
    #[inline]
    pub fn snapshot(&self) -> &Arc<Graph> {
        &self.snapshot
    }

    /// The delta overlay (empty for a delta-free pin).
    #[inline]
    pub fn overlay(&self) -> &Arc<DeltaOverlay> {
        &self.overlay
    }

    /// The snapshot epoch (incremented by every publication).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `true` when mutations were buffered on top of the snapshot at pin
    /// time.
    #[inline]
    pub fn is_dirty(&self) -> bool {
        !self.overlay.is_empty()
    }
}

/// What one [`DynamicGraph::compact`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Log entries consumed (0 means the log was clean and no new
    /// snapshot was published).
    pub applied: usize,
    /// Stored arcs added to the snapshot.
    pub arcs_inserted: u64,
    /// Stored arcs removed from the snapshot.
    pub arcs_deleted: u64,
    /// The epoch of the published snapshot (unchanged when `applied`
    /// is 0).
    pub epoch: u64,
}

/// The published snapshot slot. Readers hold the lock only long enough
/// to clone an `Arc`; the writer only for the pointer swap itself — the
/// compaction build happens entirely outside.
#[derive(Debug)]
struct EpochSlot {
    snapshot: Arc<Graph>,
    epoch: u64,
}

/// A mutable graph: immutable snapshot + delta buffer + epoch-versioned
/// publication. See the [module docs](self) for the full contract.
#[derive(Debug)]
pub struct DynamicGraph {
    slot: RwLock<EpochSlot>,
    log: Mutex<Vec<EdgeMut>>,
    /// Serializes compactions (the build phase runs outside `slot`'s
    /// write lock, so two concurrent compactors would double-apply).
    compact_gate: Mutex<()>,
    compactions: AtomicU64,
    /// Mutations refused once the log holds this many entries.
    log_capacity: AtomicUsize,
    directed: bool,
    weighted: bool,
    num_vertices: usize,
}

impl DynamicGraph {
    /// Wraps `snapshot` as epoch 0 with an empty delta buffer.
    ///
    /// Weighted snapshots are accepted (and stay readable through the
    /// versioned handle) but refuse every mutation with
    /// [`GraphError::WeightedMutation`] — mutation semantics are defined
    /// for unweighted graphs only.
    pub fn new(snapshot: Graph) -> DynamicGraph {
        let directed = snapshot.is_directed();
        let weighted = snapshot.has_weights();
        let num_vertices = snapshot.num_vertices();
        DynamicGraph {
            slot: RwLock::new(EpochSlot {
                snapshot: Arc::new(snapshot),
                epoch: 0,
            }),
            log: Mutex::new(Vec::new()),
            compact_gate: Mutex::new(()),
            compactions: AtomicU64::new(0),
            log_capacity: AtomicUsize::new(usize::MAX),
            directed,
            weighted,
            num_vertices,
        }
    }

    /// Fixed vertex count (mutations cannot add vertices).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Whether the graph was built as directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether the wrapped snapshot carries edge weights (and therefore
    /// refuses mutations).
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Bounds the delta log: once `capacity` mutations are buffered,
    /// further ones fail with [`GraphError::DeltaLogFull`] until a
    /// compaction drains the log. The default is unbounded
    /// (`usize::MAX`); a capacity of 0 refuses every mutation.
    pub fn set_log_capacity(&self, capacity: usize) {
        self.log_capacity.store(capacity, Ordering::Relaxed);
    }

    /// The configured delta-log bound (`usize::MAX` when unbounded).
    pub fn log_capacity(&self) -> usize {
        self.log_capacity.load(Ordering::Relaxed)
    }

    /// The current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.slot.read().unwrap().epoch
    }

    /// Compactions that published a new snapshot so far.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Buffered mutations not yet compacted.
    pub fn pending_len(&self) -> usize {
        self.log.lock().unwrap().len()
    }

    /// `true` when mutations are buffered on top of the snapshot.
    pub fn is_dirty(&self) -> bool {
        self.pending_len() > 0
    }

    /// The current snapshot (ignores buffered mutations; see
    /// [`DynamicGraph::pin`] for the overlay-complete view).
    pub fn snapshot(&self) -> Arc<Graph> {
        self.slot.read().unwrap().snapshot.clone()
    }

    /// Validates and appends one mutation: weighted snapshots and
    /// out-of-range endpoints are typed errors (both are reachable from
    /// untrusted wire requests, so they must not abort the process), and
    /// a full bounded log answers [`GraphError::DeltaLogFull`] so the
    /// caller can apply backpressure.
    fn push_op(&self, op: EdgeMut) -> Result<(), GraphError> {
        if self.weighted {
            return Err(GraphError::WeightedMutation);
        }
        let (u, v) = match op {
            EdgeMut::Insert(u, v) | EdgeMut::Delete(u, v) => (u, v),
        };
        let worst = u.max(v);
        if worst as usize >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: worst as u64,
                num_vertices: self.num_vertices,
            });
        }
        let mut log = self.log.lock().unwrap();
        let capacity = self.log_capacity.load(Ordering::Relaxed);
        if log.len() >= capacity {
            return Err(GraphError::DeltaLogFull {
                pending: log.len(),
                capacity,
            });
        }
        log.push(op);
        Ok(())
    }

    /// Buffers an edge insert. On undirected graphs both arcs are
    /// inserted together; inserting a present edge is a no-op at
    /// merge time.
    pub fn insert_edge(&self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.push_op(EdgeMut::Insert(u, v))
    }

    /// Buffers an edge delete. On undirected graphs both arcs are
    /// deleted together; deleting an absent edge is a no-op at merge
    /// time.
    pub fn delete_edge(&self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        self.push_op(EdgeMut::Delete(u, v))
    }

    /// Captures a consistent `(snapshot, overlay, epoch)` view. The slot
    /// read lock and log mutex are held only long enough to clone the
    /// `Arc` and copy the log; the overlay merge runs outside both.
    pub fn pin(&self) -> PinnedEpoch {
        let (snapshot, epoch, ops) = {
            // Lock order slot -> log, matching the publication path, so
            // a pin sees either (old snapshot, full log) or (new
            // snapshot, unconsumed suffix) — never a half state.
            let slot = self.slot.read().unwrap();
            let log = self.log.lock().unwrap();
            (slot.snapshot.clone(), slot.epoch, log.clone())
        };
        let overlay = if ops.is_empty() {
            Arc::new(DeltaOverlay::empty())
        } else {
            Arc::new(build_overlay(&snapshot, &ops, self.directed))
        };
        PinnedEpoch {
            snapshot,
            overlay,
            epoch,
        }
    }

    /// Merges every buffered mutation into a fresh snapshot and
    /// publishes it under the next epoch. The CSR/CSC rebuild runs
    /// without holding the publication lock; pins taken before the swap
    /// keep reading their epoch undisturbed.
    ///
    /// The new snapshot is always owned storage (a mapped snapshot
    /// therefore detaches from its file on first compaction) and carries
    /// a re-encoded compressed companion iff the old snapshot had one.
    pub fn compact(&self) -> CompactionStats {
        self.compact_prepare().commit()
    }

    /// First half of a compaction cycle: takes the compaction gate,
    /// snapshots the log, and merge-rebuilds the next CSR/CSC pair
    /// entirely off the publication lock. Nothing is published — readers
    /// and mutators proceed undisturbed — until the returned
    /// [`PendingCompaction`] is [committed](PendingCompaction::commit).
    /// The gate stays held for the lifetime of the pending value, so the
    /// caller can compute dependent work (e.g. a placement recompute
    /// over the post-merge view) without racing another compactor.
    pub fn compact_prepare(&self) -> PendingCompaction<'_> {
        let gate = self.compact_gate.lock().unwrap();
        let (snapshot, ops) = {
            let slot = self.slot.read().unwrap();
            let log = self.log.lock().unwrap();
            (slot.snapshot.clone(), log.clone())
        };
        let rebuilt = if ops.is_empty() {
            None
        } else {
            Some(Arc::new(rebuild_snapshot(&snapshot, &ops, self.directed)))
        };
        PendingCompaction {
            dg: self,
            _gate: gate,
            old_arcs: snapshot.num_edges() as i64,
            prior: snapshot,
            rebuilt,
            ops_len: ops.len(),
        }
    }

    /// Saves the graph as a binary `.vgr` file, forcing a compaction
    /// first: persisted snapshots are always delta-free, so a reload
    /// (buffered or mmap) observes exactly the current edge set.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<CompactionStats, GraphError> {
        let stats = self.compact();
        let snapshot = self.snapshot();
        let file = std::fs::File::create(path).map_err(|e| GraphError::Io(e.to_string()))?;
        write_binary_graph(&snapshot, std::io::BufWriter::new(file))?;
        Ok(stats)
    }

    /// Replaces the snapshot with a zero-copy mmap of a `.vgr` file
    /// (e.g. one produced by [`DynamicGraph::save`]), publishing it as
    /// the next epoch.
    ///
    /// Fails with [`GraphError::DirtyDynamicGraph`] when mutations are
    /// buffered: adopting a foreign snapshot under a non-empty delta
    /// buffer would silently re-apply the buffered ops to unrelated
    /// data. Compact (or save) first. Also fails when the file's vertex
    /// count or directedness disagrees with this handle.
    pub fn adopt_mapped(&self, path: impl AsRef<std::path::Path>) -> Result<u64, GraphError> {
        let _gate = self.compact_gate.lock().unwrap();
        let mapped = mmap_binary_graph(path)?;
        if mapped.num_vertices() != self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: mapped.num_vertices() as u64,
                num_vertices: self.num_vertices,
            });
        }
        let mut slot = self.slot.write().unwrap();
        let log = self.log.lock().unwrap();
        if !log.is_empty() {
            return Err(GraphError::DirtyDynamicGraph { pending: log.len() });
        }
        slot.snapshot = Arc::new(mapped);
        slot.epoch += 1;
        Ok(slot.epoch)
    }
}

/// A prepared-but-unpublished compaction: the merge-rebuild has run, the
/// compaction gate is held, and nothing is visible to readers yet. See
/// [`DynamicGraph::compact_prepare`].
#[derive(Debug)]
pub struct PendingCompaction<'a> {
    dg: &'a DynamicGraph,
    _gate: MutexGuard<'a, ()>,
    /// The snapshot the rebuild was based on.
    prior: Arc<Graph>,
    /// The merged snapshot (`None` when the log was clean).
    rebuilt: Option<Arc<Graph>>,
    ops_len: usize,
    old_arcs: i64,
}

impl PendingCompaction<'_> {
    /// Log entries this cycle will consume (0: clean log, committing is
    /// a no-op that publishes nothing).
    pub fn applied(&self) -> usize {
        self.ops_len
    }

    /// The snapshot that commit will publish: the merged rebuild, or the
    /// unchanged prior snapshot when the log was clean. Lets callers
    /// compute placement work against the post-merge view before
    /// publication.
    pub fn snapshot(&self) -> &Arc<Graph> {
        self.rebuilt.as_ref().unwrap_or(&self.prior)
    }

    /// Second half of the cycle: swaps the rebuilt snapshot in under the
    /// publication lock, drains the consumed log prefix (mutations that
    /// arrived during the rebuild stay buffered against the new
    /// snapshot), and bumps the epoch. Holding only pointer-sized work
    /// under the write lock keeps publication O(1).
    pub fn commit(self) -> CompactionStats {
        let Some(rebuilt) = self.rebuilt else {
            return CompactionStats {
                epoch: self.dg.epoch(),
                ..CompactionStats::default()
            };
        };
        let new_arcs = rebuilt.num_edges() as i64;
        let epoch = {
            let mut slot = self.dg.slot.write().unwrap();
            let mut log = self.dg.log.lock().unwrap();
            log.drain(..self.ops_len);
            slot.snapshot = rebuilt;
            slot.epoch += 1;
            slot.epoch
        };
        self.dg.compactions.fetch_add(1, Ordering::Relaxed);
        let (inserted, deleted) = arc_churn(self.old_arcs, new_arcs);
        CompactionStats {
            applied: self.ops_len,
            arcs_inserted: inserted,
            arcs_deleted: deleted,
            epoch,
        }
    }
}

/// Coordination state shared between a [`Compactor`]'s callers and its
/// worker thread: a monotone ticket pair (`requested`/`completed`) under
/// one mutex, signalled both ways through one condvar.
#[derive(Debug, Default)]
struct CompactorState {
    requested: u64,
    completed: u64,
    runs: u64,
    shutdown: bool,
    poisoned: bool,
}

/// A dedicated compaction thread: callers [request](Compactor::request)
/// cycles and optionally [wait](Compactor::wait) on them, the worker
/// runs the supplied job once per wakeup — coalescing every ticket
/// outstanding at that moment into a single run, since one compaction
/// cycle drains the whole log regardless of how many mutators asked.
///
/// This is what takes compaction off the mutation path: a mutator
/// appends to the delta log, calls [`Compactor::request`], and returns;
/// the merge-rebuild happens on the worker. [`Compactor::drain`] blocks
/// until every requested cycle has completed (the shutdown path), and
/// dropping the compactor drains outstanding tickets before joining the
/// thread.
///
/// If the job panics the compactor is *poisoned*: the panic is contained
/// to the worker, and every subsequent or blocked waiter panics with a
/// diagnostic instead of deadlocking.
#[derive(Debug)]
pub struct Compactor {
    state: Arc<(Mutex<CompactorState>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Compactor {
    /// Spawns the worker thread around an arbitrary compaction job. The
    /// job runs once per coalesced wakeup, on the worker thread only.
    pub fn spawn<F>(mut job: F) -> Compactor
    where
        F: FnMut() + Send + 'static,
    {
        let state = Arc::new((Mutex::new(CompactorState::default()), Condvar::new()));
        let worker_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("vebo-compactor".to_string())
            .spawn(move || {
                let (lock, cvar) = &*worker_state;
                loop {
                    let target = {
                        let mut st = lock.lock().unwrap();
                        while st.requested == st.completed && !st.shutdown {
                            st = cvar.wait(st).unwrap();
                        }
                        if st.requested == st.completed {
                            break; // shutdown with nothing outstanding
                        }
                        st.requested // coalesce all outstanding tickets
                    };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut job));
                    let mut st = lock.lock().unwrap();
                    st.runs += 1;
                    st.completed = target;
                    if outcome.is_err() {
                        st.poisoned = true;
                    }
                    cvar.notify_all();
                }
            })
            .expect("spawn compactor thread");
        Compactor {
            state,
            handle: Some(handle),
        }
    }

    /// Convenience worker that just calls [`DynamicGraph::compact`] on a
    /// shared handle each cycle.
    pub fn for_graph(graph: Arc<DynamicGraph>) -> Compactor {
        Compactor::spawn(move || {
            graph.compact();
        })
    }

    /// Requests one compaction cycle and returns its ticket without
    /// blocking. Multiple outstanding tickets coalesce into one run.
    pub fn request(&self) -> u64 {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        st.requested += 1;
        let ticket = st.requested;
        cvar.notify_all();
        ticket
    }

    /// Blocks until the cycle holding `ticket` has completed.
    ///
    /// Panics if the compaction job panicked (the compactor is
    /// poisoned) — the alternative is waiting forever.
    pub fn wait(&self, ticket: u64) {
        let (lock, cvar) = &*self.state;
        let poisoned = {
            let mut st = lock.lock().unwrap();
            while st.completed < ticket && !st.poisoned {
                st = cvar.wait(st).unwrap();
            }
            st.poisoned
            // Guard released here: panicking while holding it would
            // poison the mutex and abort in our own Drop during unwind.
        };
        assert!(!poisoned, "compaction thread panicked");
    }

    /// Requests a cycle and blocks until it completes — the synchronous
    /// mode used where exact compaction scheduling must be observable
    /// (deterministic benchmarks, conformance tests).
    pub fn request_and_wait(&self) {
        let ticket = self.request();
        self.wait(ticket);
    }

    /// Blocks until every requested cycle has completed (the clean
    /// shutdown path). Panics if the compactor is poisoned.
    pub fn drain(&self) {
        let ticket = {
            let (lock, _) = &*self.state;
            lock.lock().unwrap().requested
        };
        self.wait(ticket);
    }

    /// Worker runs so far (each run may serve several coalesced
    /// tickets, so `runs() <= requests`).
    pub fn runs(&self) -> u64 {
        let (lock, _) = &*self.state;
        lock.lock().unwrap().runs
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        {
            let (lock, cvar) = &*self.state;
            // Tolerate a poisoned mutex: Drop may run while a waiter's
            // "compaction thread panicked" panic is already unwinding.
            let mut st = lock.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
            cvar.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            // The worker finishes outstanding tickets before exiting;
            // its panics were already contained and recorded.
            let _ = handle.join();
        }
    }
}

fn arc_churn(old_arcs: i64, new_arcs: i64) -> (u64, u64) {
    if new_arcs >= old_arcs {
        ((new_arcs - old_arcs) as u64, 0)
    } else {
        (0, (old_arcs - new_arcs) as u64)
    }
}

/// Net per-arc multiplicity changes of `ops` against `snapshot`, with
/// edge-set clamping applied in log order: an insert only fires when the
/// arc's current multiplicity (snapshot + net so far) is zero, a delete
/// only when it is positive. Undirected graphs apply each op to both
/// mirrored arcs (self-loops once), preserving snapshot symmetry.
fn arc_deltas(
    snapshot: &Graph,
    ops: &[EdgeMut],
    directed: bool,
) -> HashMap<(VertexId, VertexId), i32> {
    let mut net: HashMap<(VertexId, VertexId), i32> = HashMap::new();
    let mut snap_count_cache: HashMap<(VertexId, VertexId), i32> = HashMap::new();
    let mut snap_count = |u: VertexId, v: VertexId| -> i32 {
        *snap_count_cache.entry((u, v)).or_insert_with(|| {
            let list = snapshot.out_neighbors(u);
            let lo = list.partition_point(|&t| t < v);
            let hi = list.partition_point(|&t| t <= v);
            (hi - lo) as i32
        })
    };
    for op in ops {
        let (insert, u, v) = match *op {
            EdgeMut::Insert(u, v) => (true, u, v),
            EdgeMut::Delete(u, v) => (false, u, v),
        };
        let arcs: &[(VertexId, VertexId)] = if directed || u == v {
            &[(u, v)]
        } else {
            &[(u, v), (v, u)]
        };
        for &(a, b) in arcs {
            let entry = net.entry((a, b)).or_insert(0);
            let mult = snap_count(a, b) + *entry;
            if insert && mult == 0 {
                *entry += 1;
            } else if !insert && mult > 0 {
                *entry -= 1;
            }
        }
    }
    net.retain(|_, d| *d != 0);
    net
}

/// Merges one sorted snapshot neighbor list with its sorted per-target
/// deltas; produces the same sorted-ascending list a from-scratch
/// counting-sort rebuild of the final edge set would.
fn merge_list(old: &[VertexId], deltas: &[(VertexId, i32)]) -> Vec<VertexId> {
    let grow: usize = deltas.iter().map(|&(_, d)| d.max(0) as usize).sum();
    let mut out = Vec::with_capacity(old.len() + grow);
    let mut i = 0usize;
    for &(t, d) in deltas {
        while i < old.len() && old[i] < t {
            out.push(old[i]);
            i += 1;
        }
        let mut have = 0i64;
        while i < old.len() && old[i] == t {
            have += 1;
            i += 1;
        }
        let keep = (have + d as i64).max(0) as usize;
        out.extend(std::iter::repeat_n(t, keep));
    }
    out.extend_from_slice(&old[i..]);
    out
}

/// Groups arc deltas by one endpoint, each group sorted by the other.
fn group_deltas(
    net: &HashMap<(VertexId, VertexId), i32>,
    by_source: bool,
) -> HashMap<VertexId, Vec<(VertexId, i32)>> {
    let mut grouped: HashMap<VertexId, Vec<(VertexId, i32)>> = HashMap::new();
    for (&(u, v), &d) in net {
        let (key, other) = if by_source { (u, v) } else { (v, u) };
        grouped.entry(key).or_default().push((other, d));
    }
    for list in grouped.values_mut() {
        list.sort_unstable_by_key(|&(t, _)| t);
    }
    grouped
}

/// Builds the pin-time overlay: merged lists for every dirty vertex of
/// both halves.
fn build_overlay(snapshot: &Graph, ops: &[EdgeMut], directed: bool) -> DeltaOverlay {
    let net = arc_deltas(snapshot, ops, directed);
    let mut overlay = DeltaOverlay {
        pending: ops.len(),
        ..DeltaOverlay::default()
    };
    for (v, deltas) in group_deltas(&net, true) {
        overlay
            .out
            .merged
            .insert(v, merge_list(snapshot.out_neighbors(v), &deltas));
    }
    for (v, deltas) in group_deltas(&net, false) {
        overlay
            .into
            .merged
            .insert(v, merge_list(snapshot.in_neighbors(v), &deltas));
    }
    overlay
}

/// Rebuilds one adjacency half, copying untouched neighbor lists and
/// merging dirty ones.
fn rebuild_half(old: &Adjacency, grouped: &HashMap<VertexId, Vec<(VertexId, i32)>>) -> Adjacency {
    let n = old.num_vertices();
    let merged: HashMap<VertexId, Vec<VertexId>> = grouped
        .iter()
        .map(|(&v, deltas)| (v, merge_list(old.neighbors(v), deltas)))
        .collect();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut total = 0usize;
    for v in 0..n as VertexId {
        total += merged.get(&v).map_or_else(|| old.degree(v), |l| l.len());
        offsets.push(total);
    }
    let mut targets = Vec::with_capacity(total);
    for v in 0..n as VertexId {
        match merged.get(&v) {
            Some(list) => targets.extend_from_slice(list),
            None => targets.extend_from_slice(old.neighbors(v)),
        }
    }
    Adjacency::from_parts_unchecked(offsets, targets, None)
}

/// Builds the next snapshot by merging `ops` into `snapshot` — both
/// halves rebuilt directly, compressed companion re-encoded iff the old
/// snapshot carried one.
fn rebuild_snapshot(snapshot: &Graph, ops: &[EdgeMut], directed: bool) -> Graph {
    let net = arc_deltas(snapshot, ops, directed);
    let out = rebuild_half(snapshot.csr(), &group_deltas(&net, true));
    let into = rebuild_half(snapshot.csc(), &group_deltas(&net, false));
    let g = Graph::from_parts(out, into, directed)
        .expect("merged halves are transposes by construction");
    if snapshot.csr().compressed().is_some() {
        g.with_compressed()
    } else {
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::StorageKind;

    fn small_directed() -> Graph {
        // 0 -> {1, 2}, 1 -> {2}, 3 -> {0}
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (3, 0)], true)
    }

    #[test]
    fn insert_then_compact_adds_arc() {
        let dg = DynamicGraph::new(small_directed());
        dg.insert_edge(2, 3).unwrap();
        assert!(dg.is_dirty());
        let stats = dg.compact();
        assert_eq!(stats.applied, 1);
        assert_eq!(stats.arcs_inserted, 1);
        assert_eq!(stats.epoch, 1);
        let g = dg.snapshot();
        assert_eq!(g.out_neighbors(2), &[3]);
        assert_eq!(g.in_neighbors(3), &[2]);
        assert!(!dg.is_dirty());
    }

    #[test]
    fn duplicate_insert_and_absent_delete_are_noops() {
        let dg = DynamicGraph::new(small_directed());
        dg.insert_edge(0, 1).unwrap(); // already present
        dg.delete_edge(2, 0).unwrap(); // absent
        let stats = dg.compact();
        assert_eq!(stats.applied, 2);
        assert_eq!(stats.arcs_inserted, 0);
        assert_eq!(stats.arcs_deleted, 0);
        assert_eq!(dg.snapshot().out_neighbors(0), &[1, 2]);
    }

    #[test]
    fn insert_then_delete_cancels_in_one_batch() {
        let dg = DynamicGraph::new(small_directed());
        dg.insert_edge(2, 3).unwrap();
        dg.delete_edge(2, 3).unwrap();
        dg.delete_edge(0, 1).unwrap();
        dg.insert_edge(0, 1).unwrap();
        let stats = dg.compact();
        assert_eq!(stats.applied, 4);
        assert_eq!(dg.snapshot().out_neighbors(2), &[] as &[VertexId]);
        assert_eq!(dg.snapshot().out_neighbors(0), &[1, 2]);
    }

    #[test]
    fn undirected_mutations_stay_symmetric() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)], false);
        let dg = DynamicGraph::new(g);
        dg.insert_edge(2, 3).unwrap();
        dg.delete_edge(1, 0).unwrap(); // mirrored form of (0, 1)
        dg.insert_edge(3, 3).unwrap(); // self-loop: one arc
        dg.compact();
        let g = dg.snapshot();
        assert_eq!(g.csr(), g.csc());
        assert_eq!(g.out_neighbors(0), &[] as &[VertexId]);
        assert_eq!(g.out_neighbors(2), &[1, 3]);
        assert_eq!(g.out_neighbors(3), &[2, 3]);
    }

    #[test]
    fn pin_overlay_matches_future_compaction() {
        let dg = DynamicGraph::new(small_directed());
        dg.insert_edge(2, 3).unwrap();
        dg.delete_edge(0, 2).unwrap();
        let pin = dg.pin();
        assert!(pin.is_dirty());
        assert_eq!(pin.epoch(), 0);
        // Overlay view agrees with what compaction will produce.
        let ov = pin.overlay();
        assert_eq!(ov.out_neighbors(pin.graph(), 2), &[3]);
        assert_eq!(ov.out_neighbors(pin.graph(), 0), &[1]);
        assert_eq!(ov.in_neighbors(pin.graph(), 3), &[2]);
        assert_eq!(ov.out_degree(pin.graph(), 0), 1);
        // Untouched vertices fall through to the snapshot.
        assert!(ov.out().merged(1).is_none());
        dg.compact();
        let g = dg.snapshot();
        assert_eq!(g.out_neighbors(2), &[3]);
        assert_eq!(g.out_neighbors(0), &[1]);
    }

    #[test]
    fn pinned_epoch_survives_compaction() {
        let dg = DynamicGraph::new(small_directed());
        let pin = dg.pin();
        dg.insert_edge(2, 3).unwrap();
        dg.compact();
        dg.delete_edge(0, 1).unwrap();
        dg.compact();
        // The old pin still reads epoch-0 data.
        assert_eq!(pin.epoch(), 0);
        assert_eq!(pin.graph().out_neighbors(2), &[] as &[VertexId]);
        assert_eq!(pin.graph().out_neighbors(0), &[1, 2]);
        assert_eq!(dg.epoch(), 2);
        assert_eq!(dg.compactions(), 2);
    }

    #[test]
    fn compact_on_clean_log_is_a_noop() {
        let dg = DynamicGraph::new(small_directed());
        let stats = dg.compact();
        assert_eq!(stats.applied, 0);
        assert_eq!(stats.epoch, 0);
        assert_eq!(dg.epoch(), 0);
        assert_eq!(dg.compactions(), 0);
    }

    #[test]
    fn compressed_companion_is_reencoded() {
        let dg = DynamicGraph::new(small_directed().with_compressed());
        dg.insert_edge(2, 3).unwrap();
        dg.compact();
        let g = dg.snapshot();
        assert_eq!(g.storage_kind(), StorageKind::Compressed);
        let decoded = g
            .csr()
            .compressed()
            .unwrap()
            .decode_to_targets(g.csr().offsets())
            .unwrap();
        assert_eq!(decoded, g.csr().targets());
    }

    #[test]
    fn save_forces_compaction_and_roundtrips() {
        let dir = std::env::temp_dir().join(format!("vebo-dyn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dyn-save.vgr");
        let dg = DynamicGraph::new(small_directed());
        dg.insert_edge(2, 3).unwrap();
        let stats = dg.save(&path).unwrap();
        assert_eq!(stats.applied, 1);
        assert!(!dg.is_dirty(), "save must leave the handle delta-free");
        let loaded = crate::io::binary::read_binary_graph(std::fs::File::open(&path).unwrap())
            .map(|g| g.out_neighbors(2).to_vec())
            .unwrap();
        assert_eq!(loaded, vec![3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn adopt_mapped_rejects_dirty_handle() {
        let dir = std::env::temp_dir().join(format!("vebo-dyn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dyn-adopt.vgr");
        let dg = DynamicGraph::new(small_directed());
        dg.save(&path).unwrap();
        dg.insert_edge(2, 3).unwrap();
        let err = dg.adopt_mapped(&path).unwrap_err();
        assert_eq!(err, GraphError::DirtyDynamicGraph { pending: 1 });
        assert!(err.to_string().contains("1 buffered mutation"), "{err}");
        // After compacting, adoption succeeds and bumps the epoch.
        dg.compact();
        let epoch = dg.adopt_mapped(&path).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(dg.snapshot().storage_kind(), StorageKind::Mapped);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mutations_during_compaction_survive_to_next_epoch() {
        let dg = DynamicGraph::new(small_directed());
        dg.insert_edge(2, 3).unwrap();
        dg.compact();
        // A mutation buffered after the compaction's snapshot was taken
        // must not be lost.
        dg.insert_edge(3, 2).unwrap();
        assert_eq!(dg.pending_len(), 1);
        dg.compact();
        assert_eq!(dg.snapshot().out_neighbors(3), &[0, 2]);
    }

    #[test]
    fn weighted_snapshot_serves_reads_but_refuses_mutations() {
        // A weighted dataset must be servable through the versioned
        // handle without aborting the process on the first mutation —
        // both are reachable from untrusted wire requests.
        let dg = DynamicGraph::new(small_directed().with_hash_weights(4));
        assert!(dg.is_weighted());
        assert_eq!(dg.snapshot().out_neighbors(0), &[1, 2]);
        let err = dg.insert_edge(2, 3).unwrap_err();
        assert_eq!(err, GraphError::WeightedMutation);
        let err = dg.delete_edge(0, 1).unwrap_err();
        assert!(err.to_string().contains("unweighted"), "{err}");
        assert!(!dg.is_dirty(), "refused mutations must not reach the log");
    }

    #[test]
    fn out_of_range_mutation_is_a_typed_error() {
        let dg = DynamicGraph::new(small_directed());
        let err = dg.insert_edge(0, 9).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 4
            }
        );
        assert!(!dg.is_dirty());
    }

    #[test]
    fn bounded_log_answers_full_until_compacted() {
        let dg = DynamicGraph::new(small_directed());
        dg.set_log_capacity(2);
        dg.insert_edge(2, 3).unwrap();
        dg.insert_edge(3, 2).unwrap();
        let err = dg.insert_edge(1, 0).unwrap_err();
        assert_eq!(
            err,
            GraphError::DeltaLogFull {
                pending: 2,
                capacity: 2
            }
        );
        // Backpressure resolves once a compaction drains the log.
        dg.compact();
        dg.insert_edge(1, 0).unwrap();
        assert_eq!(dg.pending_len(), 1);
    }

    #[test]
    fn compact_prepare_commit_splits_one_cycle() {
        let dg = DynamicGraph::new(small_directed());
        dg.insert_edge(2, 3).unwrap();
        let pending = dg.compact_prepare();
        assert_eq!(pending.applied(), 1);
        // Nothing is visible until commit: readers still see epoch 0.
        assert_eq!(dg.epoch(), 0);
        assert_eq!(dg.snapshot().out_neighbors(2), &[] as &[VertexId]);
        // The post-merge view is available for dependent work.
        assert_eq!(pending.snapshot().out_neighbors(2), &[3]);
        let stats = pending.commit();
        assert_eq!(stats.applied, 1);
        assert_eq!(stats.epoch, 1);
        assert_eq!(dg.snapshot().out_neighbors(2), &[3]);
        assert!(!dg.is_dirty());
    }

    #[test]
    fn compactor_runs_cycles_off_thread_and_coalesces() {
        let dg = Arc::new(DynamicGraph::new(small_directed()));
        let compactor = Compactor::for_graph(Arc::clone(&dg));
        dg.insert_edge(2, 3).unwrap();
        // Several requests while one cycle drains the whole log must
        // coalesce rather than queue redundant rebuilds.
        let t1 = compactor.request();
        let t2 = compactor.request();
        compactor.wait(t2);
        compactor.wait(t1); // completed tickets return immediately
        assert_eq!(dg.snapshot().out_neighbors(2), &[3]);
        assert!(!dg.is_dirty());
        assert!(compactor.runs() <= 2);

        dg.delete_edge(2, 3).unwrap();
        compactor.request_and_wait();
        assert_eq!(dg.snapshot().out_neighbors(2), &[] as &[VertexId]);
        compactor.drain(); // nothing outstanding: returns immediately
    }

    #[test]
    fn compactor_drop_drains_outstanding_work() {
        let dg = Arc::new(DynamicGraph::new(small_directed()));
        {
            let compactor = Compactor::for_graph(Arc::clone(&dg));
            dg.insert_edge(2, 3).unwrap();
            compactor.request();
            // No wait: drop must finish the requested cycle itself.
        }
        assert!(!dg.is_dirty());
        assert_eq!(dg.snapshot().out_neighbors(2), &[3]);
    }

    #[test]
    #[should_panic(expected = "compaction thread panicked")]
    fn poisoned_compactor_fails_waiters_instead_of_hanging() {
        let compactor = Compactor::spawn(|| panic!("boom"));
        let ticket = compactor.request();
        compactor.wait(ticket);
    }
}
