//! Synthetic graph generators.
//!
//! The paper evaluates on large public graphs (Twitter, Friendster, …) that
//! are not redistributable at reproduction scale; these generators produce
//! scaled-down analogues with matching degree-distribution *shape*:
//!
//! * [`zipf`] — the exact Zipf in-degree model of §III-A, used both to build
//!   directed power-law graphs and to check the preconditions of
//!   Theorems 1 and 2;
//! * [`powerlaw`] — directed graphs with Zipf in-degrees and undirected
//!   Chung–Lu power-law graphs;
//! * [`rmat`] — recursive-matrix (R-MAT / Graph500) generator for the
//!   RMAT27 analogue;
//! * [`grid`] — 2D road-network-style meshes with near-constant degree
//!   (USAroad analogue);
//! * [`er`] — Erdős–Rényi G(n, m) graphs for tests.

pub mod er;
pub mod grid;
pub mod powerlaw;
pub mod rmat;
pub mod zipf;

pub use er::gnm;
pub use grid::{grid_graph, GridConfig};
pub use powerlaw::{chung_lu_undirected, zipf_directed, ChungLuConfig, ZipfGraphConfig};
pub use rmat::{rmat_edges, rmat_graph, RmatConfig};
pub use zipf::ZipfDegreeModel;

use crate::permute::Permutation;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Returns a uniformly random permutation of `0..n`, seeded for
/// reproducibility. Generators apply this to decorrelate vertex id from
/// degree (real-world crawls are not degree-sorted).
pub fn random_permutation(n: usize, seed: u64) -> Permutation {
    let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    Permutation::from_new_ids(ids).expect("shuffle of 0..n is a bijection")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_permutation_is_bijection() {
        let p = random_permutation(100, 7);
        let mut seen = [false; 100];
        for v in 0..100 {
            seen[p.new_id(v) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn random_permutation_is_seeded() {
        assert_eq!(
            random_permutation(50, 1).as_slice(),
            random_permutation(50, 1).as_slice()
        );
        assert_ne!(
            random_permutation(50, 1).as_slice(),
            random_permutation(50, 2).as_slice()
        );
    }

    #[test]
    fn random_permutation_actually_shuffles() {
        let p = random_permutation(1000, 3);
        assert!(!p.is_identity());
    }
}
