//! The Zipf in-degree model of §III-A of the paper.
//!
//! The paper models in-degrees as a Zipf distribution with `N` ranks and
//! exponent `s`: `p_k = k^{-s} / H_{N,s}` for `k = 1..=N`, where a vertex at
//! rank `k` has in-degree `k - 1`. Rank 1 (degree 0) is the most frequent.
//! Theorems 1 and 2 give optimality conditions in terms of `N`, `s`, `n`,
//! `|E|` and `P` — this module provides the distribution, its moments, and
//! the precondition checks.

use rand::Rng;

/// Generalized harmonic number `H_{N,s} = sum_{i=1}^{N} i^{-s}`.
pub fn generalized_harmonic(n_ranks: usize, s: f64) -> f64 {
    (1..=n_ranks).map(|i| (i as f64).powf(-s)).sum()
}

/// The Zipf in-degree distribution with `num_ranks = N` and exponent `s`,
/// over a graph with `num_vertices = n` vertices.
#[derive(Clone, Debug)]
pub struct ZipfDegreeModel {
    num_vertices: usize,
    num_ranks: usize,
    s: f64,
    /// `cdf[k-1]` = P(rank <= k); `cdf[N-1] == 1`.
    cdf: Vec<f64>,
    harmonic: f64,
}

impl ZipfDegreeModel {
    /// Builds the model. `num_ranks` is `N` = 1 + maximum in-degree;
    /// `s >= 0` is the skew exponent (the paper's power-law exponent alpha
    /// relates as `alpha = 1 + 1/s`).
    pub fn new(num_vertices: usize, num_ranks: usize, s: f64) -> ZipfDegreeModel {
        assert!(num_ranks >= 1, "need at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let harmonic = generalized_harmonic(num_ranks, s);
        let mut cdf = Vec::with_capacity(num_ranks);
        let mut acc = 0.0;
        for k in 1..=num_ranks {
            acc += (k as f64).powf(-s) / harmonic;
            cdf.push(acc);
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().unwrap() = 1.0;
        ZipfDegreeModel {
            num_vertices,
            num_ranks,
            s,
            cdf,
            harmonic,
        }
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of ranks `N` (one more than the highest degree).
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// The exponent `s`.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// `H_{N,s}`.
    pub fn harmonic(&self) -> f64 {
        self.harmonic
    }

    /// P(in-degree == `d`) for `d = k - 1`.
    pub fn degree_probability(&self, d: usize) -> f64 {
        let k = d + 1;
        if k > self.num_ranks {
            return 0.0;
        }
        (k as f64).powf(-self.s) / self.harmonic
    }

    /// Expected in-degree `E[k - 1]`.
    pub fn expected_degree(&self) -> f64 {
        (1..=self.num_ranks)
            .map(|k| (k as f64 - 1.0) * (k as f64).powf(-self.s))
            .sum::<f64>()
            / self.harmonic
    }

    /// Expected number of edges `n * E[deg]`.
    pub fn expected_edges(&self) -> f64 {
        self.num_vertices as f64 * self.expected_degree()
    }

    /// Samples one in-degree (inverse-CDF with binary search, `O(log N)`).
    pub fn sample_degree<R: Rng>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.random();
        // partition_point returns the first rank whose cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.num_ranks - 1) as u32
    }

    /// Samples an in-degree for every vertex.
    pub fn sample_degree_sequence<R: Rng>(&self, rng: &mut R) -> Vec<u32> {
        (0..self.num_vertices)
            .map(|_| self.sample_degree(rng))
            .collect()
    }

    /// Theorem 1 precondition: `|E| >= N (P - 1)` and `P < N`, using the
    /// expected edge count.
    pub fn theorem1_holds(&self, num_partitions: usize) -> bool {
        let e = self.expected_edges();
        e >= (self.num_ranks * (num_partitions.saturating_sub(1))) as f64
            && num_partitions < self.num_ranks
    }

    /// Theorem 2 precondition: `n >= N * H_{N,s}`.
    pub fn theorem2_holds(&self) -> bool {
        self.num_vertices as f64 >= self.num_ranks as f64 * self.harmonic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn harmonic_matches_known_values() {
        assert!((generalized_harmonic(1, 1.0) - 1.0).abs() < 1e-12);
        assert!((generalized_harmonic(2, 1.0) - 1.5).abs() < 1e-12);
        assert!(
            (generalized_harmonic(4, 2.0) - (1.0 + 0.25 + 1.0 / 9.0 + 1.0 / 16.0)).abs() < 1e-12
        );
        // s = 0 degenerates to a uniform distribution over ranks.
        assert!((generalized_harmonic(10, 0.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let m = ZipfDegreeModel::new(1000, 50, 1.3);
        let total: f64 = (0..50).map(|d| m.degree_probability(d)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(m.degree_probability(50), 0.0);
    }

    #[test]
    fn zero_degree_is_most_frequent() {
        let m = ZipfDegreeModel::new(1000, 100, 1.0);
        for d in 1..100 {
            assert!(m.degree_probability(0) >= m.degree_probability(d));
        }
    }

    #[test]
    fn expected_degree_matches_empirical_mean() {
        let m = ZipfDegreeModel::new(200_000, 64, 1.2);
        let mut rng = StdRng::seed_from_u64(11);
        let degs = m.sample_degree_sequence(&mut rng);
        let mean = degs.iter().map(|&d| d as f64).sum::<f64>() / degs.len() as f64;
        let expected = m.expected_degree();
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn sampled_degrees_stay_in_range() {
        let m = ZipfDegreeModel::new(10_000, 16, 0.9);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(m.sample_degree(&mut rng) < 16);
        }
    }

    #[test]
    fn theorem_preconditions_behave() {
        // Large expected edge count, small P: both theorems hold.
        let m = ZipfDegreeModel::new(100_000, 64, 1.0);
        assert!(m.theorem1_holds(8));
        assert!(m.theorem2_holds());
        // P >= N violates Theorem 1's P < N requirement.
        assert!(!m.theorem1_holds(64));
        // Tiny n violates Theorem 2's n >= N * H.
        let tiny = ZipfDegreeModel::new(10, 64, 1.0);
        assert!(!tiny.theorem2_holds());
    }

    #[test]
    fn s_equals_one_requirement_from_paper() {
        // §III-D: "if s = 1, then the requirement is n >= 2N" —
        // approximately, since H_{N,1} grows as ln N; check the paper's
        // example magnitude for small N where H ~ 2.
        let m = ZipfDegreeModel::new(8, 4, 1.0);
        // H_{4,1} = 1 + 1/2 + 1/3 + 1/4 = 2.0833; n = 8 < 4 * 2.0833
        assert!(!m.theorem2_holds());
        let m2 = ZipfDegreeModel::new(9, 4, 1.0);
        assert!(m2.theorem2_holds());
    }
}
