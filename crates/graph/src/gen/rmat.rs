//! R-MAT (recursive matrix) generator, the Graph500/PBBS family used for
//! the paper's RMAT27 dataset.

use crate::gen::random_permutation;
use crate::graph::Graph;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT parameters. Vertices number `2^scale`; `edge_factor` edges are
/// sampled per vertex. The quadrant probabilities `(a, b, c, d)` must sum
/// to 1; the Graph500 defaults `(0.57, 0.19, 0.19, 0.05)` give the heavy
/// skew of the paper's RMAT27 (69% of vertices end up with zero degree).
#[derive(Clone, Debug)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges generated per vertex.
    pub edge_factor: usize,
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability (`d = 1 - a - b - c`).
    pub c: f64,
    /// Remove duplicate edges after generation.
    pub dedup: bool,
    /// Shuffle vertex ids (R-MAT correlates low ids with high degree).
    pub shuffle_ids: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 14,
            edge_factor: 10,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            dedup: true,
            shuffle_ids: true,
            seed: 42,
        }
    }
}

impl RmatConfig {
    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Samples the raw R-MAT edge list (before any deduplication).
pub fn rmat_edges(cfg: &RmatConfig) -> Vec<(VertexId, VertexId)> {
    assert!(cfg.scale >= 1 && cfg.scale <= 30);
    let d = cfg.d();
    assert!((0.0..=1.0).contains(&d), "a + b + c must be <= 1");
    let n: u64 = 1 << cfg.scale;
    let m = (n as usize) * cfg.edge_factor;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0u64, 0u64);
        for level in 0..cfg.scale {
            let bit = 1u64 << (cfg.scale - 1 - level);
            let r: f64 = rng.random();
            if r < cfg.a {
                // top-left: no bits set
            } else if r < cfg.a + cfg.b {
                v |= bit;
            } else if r < cfg.a + cfg.b + cfg.c {
                u |= bit;
            } else {
                u |= bit;
                v |= bit;
            }
        }
        edges.push((u as VertexId, v as VertexId));
    }
    edges
}

/// Generates the directed R-MAT graph (optionally deduplicated and
/// id-shuffled).
pub fn rmat_graph(cfg: &RmatConfig) -> Graph {
    let mut edges = rmat_edges(cfg);
    if cfg.dedup {
        edges.sort_unstable();
        edges.dedup();
    }
    let n = 1usize << cfg.scale;
    let g = Graph::from_edges(n, &edges, true);
    if cfg.shuffle_ids {
        random_permutation(n, cfg.seed ^ 0xD1CE).apply_graph(&g)
    } else {
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::characterize;

    #[test]
    fn edge_count_matches_factor() {
        let cfg = RmatConfig {
            scale: 10,
            edge_factor: 8,
            dedup: false,
            ..Default::default()
        };
        let edges = rmat_edges(&cfg);
        assert_eq!(edges.len(), 1024 * 8);
    }

    #[test]
    fn endpoints_in_range() {
        let cfg = RmatConfig {
            scale: 9,
            ..Default::default()
        };
        for (u, v) in rmat_edges(&cfg) {
            assert!((u as usize) < 512 && (v as usize) < 512);
        }
    }

    #[test]
    fn skewed_parameters_create_heavy_tail_and_zero_degrees() {
        let cfg = RmatConfig {
            scale: 12,
            edge_factor: 10,
            seed: 7,
            ..Default::default()
        };
        let g = rmat_graph(&cfg);
        let c = characterize(&g);
        let mean = c.edges as f64 / c.vertices as f64;
        assert!(c.max_in_degree as f64 > 10.0 * mean);
        // RMAT27 in the paper has 69% zero in-degree; scaled versions are
        // also dominated by zero-degree vertices.
        assert!(c.pct_zero_in() > 20.0, "pct zero in = {}", c.pct_zero_in());
    }

    #[test]
    fn uniform_parameters_are_not_skewed() {
        let cfg = RmatConfig {
            scale: 12,
            edge_factor: 10,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            dedup: false,
            shuffle_ids: false,
            seed: 8,
        };
        let g = rmat_graph(&cfg);
        let c = characterize(&g);
        let mean = c.edges as f64 / c.vertices as f64;
        // Uniform quadrants degenerate to Erdos-Renyi: light tail.
        assert!((c.max_in_degree as f64) < 6.0 * mean);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RmatConfig {
            scale: 8,
            seed: 3,
            ..Default::default()
        };
        assert_eq!(rmat_edges(&cfg), rmat_edges(&cfg));
    }

    #[test]
    fn dedup_removes_duplicates() {
        let cfg = RmatConfig {
            scale: 6,
            edge_factor: 50,
            dedup: true,
            shuffle_ids: false,
            ..Default::default()
        };
        let g = rmat_graph(&cfg);
        for u in g.vertices() {
            let nb = g.out_neighbors(u);
            assert!(nb.windows(2).all(|w| w[0] != w[1]), "duplicate edge at {u}");
        }
    }
}
