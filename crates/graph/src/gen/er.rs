//! Erdős–Rényi `G(n, m)` generator, mainly for tests and sanity baselines.

use crate::graph::Graph;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `num_edges` uniformly random arcs (no self-loops; parallel arcs
/// possible) and builds a graph.
pub fn gnm(num_vertices: usize, num_edges: usize, directed: bool, seed: u64) -> Graph {
    assert!(num_vertices >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let u = rng.random_range(0..num_vertices) as VertexId;
        let v = rng.random_range(0..num_vertices) as VertexId;
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::from_edges(num_vertices, &edges, directed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_requested_size() {
        let g = gnm(100, 500, true, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn gnm_undirected_symmetrizes() {
        let g = gnm(50, 100, false, 2);
        for v in g.vertices() {
            assert_eq!(g.out_neighbors(v), g.in_neighbors(v));
        }
    }

    #[test]
    fn gnm_deterministic() {
        let a = gnm(64, 256, true, 9);
        let b = gnm(64, 256, true, 9);
        assert_eq!(a.csr().targets(), b.csr().targets());
    }

    #[test]
    fn gnm_no_self_loops() {
        let g = gnm(30, 200, true, 3);
        for v in g.vertices() {
            assert!(!g.out_neighbors(v).contains(&v));
        }
    }
}
