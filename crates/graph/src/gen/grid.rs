//! Road-network-style 2D mesh generator (the USAroad analogue).
//!
//! Road networks have near-constant degree (USAroad's maximum is 9) and
//! strong spatial locality in their vertex ids. A 2D lattice with row-major
//! ids, optional diagonal shortcuts, and a small random-deletion rate
//! reproduces both properties.

use crate::graph::Graph;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Grid configuration. The graph has `width * height` vertices.
#[derive(Clone, Debug)]
pub struct GridConfig {
    /// Grid width in vertices.
    pub width: usize,
    /// Grid height in vertices.
    pub height: usize,
    /// Probability of adding each diagonal edge (raises max degree to 8).
    pub diagonal_prob: f64,
    /// Probability of deleting each lattice edge (models missing roads).
    pub deletion_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            width: 64,
            height: 64,
            diagonal_prob: 0.1,
            deletion_prob: 0.05,
            seed: 42,
        }
    }
}

/// Generates the undirected mesh. Vertex ids are row-major
/// (`id = y * width + x`), preserving the spatial locality the paper notes
/// for road networks (§V-B).
pub fn grid_graph(cfg: &GridConfig) -> Graph {
    assert!(cfg.width >= 2 && cfg.height >= 2);
    let n = cfg.width * cfg.height;
    let id = |x: usize, y: usize| (y * cfg.width + x) as VertexId;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * 2);
    for y in 0..cfg.height {
        for x in 0..cfg.width {
            if x + 1 < cfg.width && rng.random::<f64>() >= cfg.deletion_prob {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < cfg.height && rng.random::<f64>() >= cfg.deletion_prob {
                edges.push((id(x, y), id(x, y + 1)));
            }
            if x + 1 < cfg.width && y + 1 < cfg.height && rng.random::<f64>() < cfg.diagonal_prob {
                edges.push((id(x, y), id(x + 1, y + 1)));
            }
            if x >= 1 && y + 1 < cfg.height && rng.random::<f64>() < cfg.diagonal_prob {
                edges.push((id(x, y), id(x - 1, y + 1)));
            }
        }
    }
    Graph::from_edges(n, &edges, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::characterize;

    #[test]
    fn grid_has_bounded_degree() {
        let g = grid_graph(&GridConfig {
            width: 20,
            height: 20,
            ..Default::default()
        });
        let c = characterize(&g);
        assert_eq!(c.vertices, 400);
        assert!(c.max_in_degree <= 8, "max degree {}", c.max_in_degree);
    }

    #[test]
    fn pure_lattice_degrees() {
        let g = grid_graph(&GridConfig {
            width: 3,
            height: 3,
            diagonal_prob: 0.0,
            deletion_prob: 0.0,
            seed: 1,
        });
        // Corner vertices have degree 2, edge vertices 3, center 4.
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(1), 3);
        assert_eq!(g.out_degree(4), 4);
        assert_eq!(g.num_edges(), 24); // 12 undirected edges
    }

    #[test]
    fn grid_is_symmetric() {
        let g = grid_graph(&GridConfig {
            width: 8,
            height: 8,
            ..Default::default()
        });
        for v in g.vertices() {
            assert_eq!(g.out_neighbors(v), g.in_neighbors(v));
        }
    }

    #[test]
    fn ids_have_spatial_locality() {
        // Without diagonals/deletions, every neighbor differs by 1 or width.
        let w = 10;
        let g = grid_graph(&GridConfig {
            width: w,
            height: 10,
            diagonal_prob: 0.0,
            deletion_prob: 0.0,
            seed: 2,
        });
        for v in g.vertices() {
            for &t in g.out_neighbors(v) {
                let d = (v as i64 - t as i64).unsigned_abs() as usize;
                assert!(d == 1 || d == w, "neighbor distance {d}");
            }
        }
    }

    #[test]
    fn deletion_reduces_edges() {
        let full = grid_graph(&GridConfig {
            width: 30,
            height: 30,
            diagonal_prob: 0.0,
            deletion_prob: 0.0,
            seed: 3,
        });
        let thinned = grid_graph(&GridConfig {
            width: 30,
            height: 30,
            diagonal_prob: 0.0,
            deletion_prob: 0.3,
            seed: 3,
        });
        assert!(thinned.num_edges() < full.num_edges());
    }
}
