//! Power-law graph generators: directed Zipf in-degree graphs and
//! undirected Chung–Lu graphs.

use crate::gen::random_permutation;
use crate::gen::zipf::ZipfDegreeModel;
use crate::graph::Graph;
use crate::types::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a directed graph with Zipf-distributed in-degrees —
/// the graph family the paper's Theorems 1 and 2 are proved for.
#[derive(Clone, Debug)]
pub struct ZipfGraphConfig {
    /// Number of vertices `n`.
    pub num_vertices: usize,
    /// Number of degree ranks `N` (max in-degree is `N - 1`).
    pub num_ranks: usize,
    /// Zipf exponent `s`.
    pub s: f64,
    /// Skew of the out-degree side: sources are drawn as
    /// `floor(n * u^out_skew)` over eligible ranks. `1.0` = uniform;
    /// larger values concentrate out-edges on few vertices.
    pub out_skew: f64,
    /// Fraction of vertices excluded as sources (they end with out-degree
    /// 0, mirroring the "% vertices with zero out-degree" column of
    /// Table I).
    pub zero_out_fraction: f64,
    /// Shuffle vertex ids so degree is uncorrelated with id (real crawls
    /// are not degree-sorted).
    pub shuffle_ids: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZipfGraphConfig {
    fn default() -> Self {
        ZipfGraphConfig {
            num_vertices: 10_000,
            num_ranks: 256,
            s: 1.4,
            out_skew: 2.0,
            zero_out_fraction: 0.05,
            shuffle_ids: true,
            seed: 42,
        }
    }
}

/// Generates a directed graph whose in-degree sequence is drawn from the
/// paper's Zipf model; each in-edge's source is sampled independently with
/// configurable skew. Self-loops are redirected to the next vertex, and
/// parallel in-edges are allowed (as in real crawls).
pub fn zipf_directed(cfg: &ZipfGraphConfig) -> Graph {
    let n = cfg.num_vertices;
    assert!(n >= 2, "need at least two vertices");
    assert!((0.0..1.0).contains(&cfg.zero_out_fraction));
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let model = ZipfDegreeModel::new(n, cfg.num_ranks, cfg.s);
    let in_degrees = model.sample_degree_sequence(&mut rng);
    let num_sources = ((n as f64) * (1.0 - cfg.zero_out_fraction)).ceil().max(1.0) as usize;

    let m: usize = in_degrees.iter().map(|&d| d as usize).sum();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(m);
    for (v, &d) in in_degrees.iter().enumerate() {
        let v = v as VertexId;
        for _ in 0..d {
            let u: f64 = rng.random();
            let mut src = ((num_sources as f64) * u.powf(cfg.out_skew)) as usize;
            if src >= num_sources {
                src = num_sources - 1;
            }
            let mut src = src as VertexId;
            if src == v {
                src = (src + 1) % n as VertexId; // avoid self-loops
            }
            edges.push((src, v));
        }
    }

    let g = Graph::from_edges(n, &edges, true);
    if cfg.shuffle_ids {
        random_permutation(n, cfg.seed ^ 0xD1CE).apply_graph(&g)
    } else {
        g
    }
}

/// Configuration for the undirected Chung–Lu power-law generator.
#[derive(Clone, Debug)]
pub struct ChungLuConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges to sample (each becomes two arcs).
    pub num_edges: usize,
    /// Power-law exponent alpha of the expected-degree sequence
    /// (`w_v ~ (v + 1)^(-1 / (alpha - 1))`). The paper's "Powerlaw" dataset
    /// uses alpha = 2.
    pub alpha: f64,
    /// Shuffle vertex ids after generation.
    pub shuffle_ids: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChungLuConfig {
    fn default() -> Self {
        ChungLuConfig {
            num_vertices: 10_000,
            num_edges: 30_000,
            alpha: 2.0,
            shuffle_ids: true,
            seed: 42,
        }
    }
}

/// Generates an undirected Chung–Lu graph: both endpoints of each edge are
/// drawn with probability proportional to a power-law weight sequence,
/// giving a power-law degree distribution with exponent ~alpha.
pub fn chung_lu_undirected(cfg: &ChungLuConfig) -> Graph {
    let n = cfg.num_vertices;
    assert!(n >= 2 && cfg.alpha > 1.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let gamma = 1.0 / (cfg.alpha - 1.0);
    // Cumulative weights for inverse-CDF endpoint sampling.
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for v in 0..n {
        acc += ((v + 1) as f64).powf(-gamma);
        cum.push(acc);
    }
    let total = acc;
    let sample_vertex = |rng: &mut StdRng| -> VertexId {
        let u: f64 = rng.random::<f64>() * total;
        cum.partition_point(|&c| c < u).min(n - 1) as VertexId
    };

    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(cfg.num_edges);
    while edges.len() < cfg.num_edges {
        let a = sample_vertex(&mut rng);
        let b = sample_vertex(&mut rng);
        if a != b {
            edges.push((a, b));
        }
    }

    let g = Graph::from_edges(n, &edges, false);
    if cfg.shuffle_ids {
        random_permutation(n, cfg.seed ^ 0xD1CE).apply_graph(&g)
    } else {
        g
    }
}

/// Configuration for the undirected configuration-model generator with
/// Zipf-distributed degrees.
#[derive(Clone, Debug)]
pub struct ZipfUndirectedConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of degree ranks `N`; degrees are drawn from `1..=N` with
    /// `P(d) ~ d^{-s}` (minimum degree 1, so degree-1 vertices are
    /// abundant — the property Theorem 1's proof relies on).
    pub num_ranks: usize,
    /// Zipf exponent over degrees.
    pub s: f64,
    /// Shuffle vertex ids after generation.
    pub shuffle_ids: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZipfUndirectedConfig {
    fn default() -> Self {
        ZipfUndirectedConfig {
            num_vertices: 10_000,
            num_ranks: 512,
            s: 1.5,
            shuffle_ids: true,
            seed: 42,
        }
    }
}

/// Generates an undirected power-law graph via the configuration model:
/// each vertex draws a degree `d in 1..=N` with `P(d) ~ d^{-s}`, stubs are
/// shuffled and paired, then self-loops and duplicate pairs are dropped
/// (slightly trimming realized degrees, as in real cleaned datasets).
pub fn zipf_undirected(cfg: &ZipfUndirectedConfig) -> Graph {
    let n = cfg.num_vertices;
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // P(degree = k) ~ k^{-s} for k = 1..=N: reuse the Zipf model and shift
    // its degree-(k-1) convention up by one.
    let model = ZipfDegreeModel::new(n, cfg.num_ranks, cfg.s);
    let mut stubs: Vec<VertexId> = Vec::new();
    for v in 0..n as VertexId {
        let d = model.sample_degree(&mut rng) as usize + 1;
        stubs.extend(std::iter::repeat_n(v, d));
    }
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    use rand::seq::SliceRandom;
    stubs.shuffle(&mut rng);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(stubs.len() / 2);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            edges.push((pair[0], pair[1]));
        }
    }
    let g = Graph::from_edges(n, &edges, false);
    if cfg.shuffle_ids {
        random_permutation(n, cfg.seed ^ 0xD1CE).apply_graph(&g)
    } else {
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::characterize;

    #[test]
    fn zipf_directed_has_requested_shape() {
        let cfg = ZipfGraphConfig {
            num_vertices: 5000,
            num_ranks: 64,
            s: 1.2,
            seed: 1,
            ..Default::default()
        };
        let g = zipf_directed(&cfg);
        let c = characterize(&g);
        assert_eq!(c.vertices, 5000);
        assert!(
            c.max_in_degree <= 63 + 1,
            "parallel edges may add at most noise"
        );
        assert!(
            c.zero_in_degree > 0,
            "Zipf rank 1 (degree 0) is most frequent"
        );
        // Expected edges within 15% of the model's expectation.
        let model = ZipfDegreeModel::new(5000, 64, 1.2);
        let e = model.expected_edges();
        assert!(
            (c.edges as f64 - e).abs() / e < 0.15,
            "m = {} vs E = {e}",
            c.edges
        );
    }

    #[test]
    fn zipf_directed_is_deterministic_per_seed() {
        let cfg = ZipfGraphConfig {
            num_vertices: 500,
            seed: 9,
            ..Default::default()
        };
        let g1 = zipf_directed(&cfg);
        let g2 = zipf_directed(&cfg);
        assert_eq!(g1.csr().targets(), g2.csr().targets());
        assert_eq!(g1.csr().offsets(), g2.csr().offsets());
    }

    #[test]
    fn zipf_directed_zero_out_fraction_respected() {
        let cfg = ZipfGraphConfig {
            num_vertices: 2000,
            zero_out_fraction: 0.5,
            shuffle_ids: true,
            seed: 3,
            ..Default::default()
        };
        let g = zipf_directed(&cfg);
        let c = characterize(&g);
        // At least the excluded half has zero out-degree (skew makes more).
        assert!(c.pct_zero_out() >= 50.0 - 1.0, "pct = {}", c.pct_zero_out());
    }

    #[test]
    fn zipf_directed_has_no_self_loops() {
        let cfg = ZipfGraphConfig {
            num_vertices: 300,
            shuffle_ids: false,
            seed: 2,
            ..Default::default()
        };
        let g = zipf_directed(&cfg);
        for v in g.vertices() {
            assert!(!g.out_neighbors(v).contains(&v));
        }
    }

    #[test]
    fn zipf_undirected_has_degree_one_vertices() {
        let g = zipf_undirected(&ZipfUndirectedConfig {
            num_vertices: 4000,
            num_ranks: 256,
            s: 1.5,
            shuffle_ids: false,
            seed: 11,
        });
        let deg1 = g.vertices().filter(|&v| g.in_degree(v) == 1).count();
        // Degree 1 is the modal degree under P(d) ~ d^{-1.5}.
        assert!(
            deg1 > g.num_vertices() / 10,
            "only {deg1} degree-1 vertices"
        );
    }

    #[test]
    fn zipf_undirected_is_symmetric_and_loop_free() {
        let g = zipf_undirected(&ZipfUndirectedConfig {
            num_vertices: 1000,
            seed: 12,
            ..Default::default()
        });
        for v in g.vertices() {
            assert_eq!(g.out_neighbors(v), g.in_neighbors(v));
            assert!(!g.out_neighbors(v).contains(&v));
        }
    }

    #[test]
    fn zipf_undirected_mean_degree_tracks_model() {
        let cfg = ZipfUndirectedConfig {
            num_vertices: 20_000,
            num_ranks: 128,
            s: 1.5,
            shuffle_ids: false,
            seed: 13,
        };
        let g = zipf_undirected(&cfg);
        let model = ZipfDegreeModel::new(cfg.num_vertices, cfg.num_ranks, cfg.s);
        let want = model.expected_degree() + 1.0; // degrees shifted up by one
        let got = g.num_edges() as f64 / g.num_vertices() as f64;
        // Dedup/self-loop removal trims a little, so allow 15% shortfall.
        assert!(
            got > 0.85 * want && got < 1.05 * want,
            "mean {got} vs model {want}"
        );
    }

    #[test]
    fn chung_lu_is_power_law_shaped() {
        let cfg = ChungLuConfig {
            num_vertices: 5000,
            num_edges: 20_000,
            alpha: 2.0,
            seed: 4,
            ..Default::default()
        };
        let g = chung_lu_undirected(&cfg);
        // Symmetrization dedupes repeated samples of the same pair, so the
        // arc count is at most 2 * num_edges and well above half of it.
        assert!(
            g.num_edges() <= 40_000 && g.num_edges() > 20_000,
            "m = {}",
            g.num_edges()
        );
        let c = characterize(&g);
        // Heavy tail: max degree far above the mean.
        let mean = c.edges as f64 / c.vertices as f64;
        assert!(
            c.max_in_degree as f64 > 5.0 * mean,
            "max {} mean {mean}",
            c.max_in_degree
        );
    }

    #[test]
    fn chung_lu_is_symmetric() {
        let cfg = ChungLuConfig {
            num_vertices: 300,
            num_edges: 900,
            seed: 5,
            ..Default::default()
        };
        let g = chung_lu_undirected(&cfg);
        for v in g.vertices() {
            assert_eq!(g.out_neighbors(v), g.in_neighbors(v));
        }
    }

    #[test]
    fn shuffle_decorrelates_degree_from_id() {
        let base = ZipfGraphConfig {
            num_vertices: 4000,
            shuffle_ids: false,
            out_skew: 3.0,
            seed: 6,
            ..Default::default()
        };
        let unshuffled = zipf_directed(&base);
        let shuffled = zipf_directed(&ZipfGraphConfig {
            shuffle_ids: true,
            ..base
        });
        // Without shuffling, out-degrees concentrate on low ids; measure the
        // share of out-edges in the first 10% of ids.
        let share = |g: &Graph| {
            let cut = g.num_vertices() / 10;
            let head: usize = (0..cut as VertexId).map(|v| g.out_degree(v)).sum();
            head as f64 / g.num_edges() as f64
        };
        // With out_skew = 3, P(src in first 10% of ids) = (0.1/0.95)^(1/3)
        // ~= 0.47; after shuffling it drops to ~0.1.
        assert!(
            share(&unshuffled) > 0.4,
            "unshuffled share {}",
            share(&unshuffled)
        );
        assert!(
            share(&shuffled) < 0.3,
            "shuffled share {}",
            share(&shuffled)
        );
    }
}
