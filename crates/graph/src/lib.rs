//! # vebo-graph
//!
//! Graph substrate for the VEBO reproduction (Sun, Vandierendonck,
//! Nikolopoulos, PPoPP 2019): compact in-memory graph representations,
//! synthetic graph generators matching the paper's datasets, vertex
//! permutation machinery, and simple text I/O.
//!
//! The central type is [`Graph`], which stores a directed graph as a pair of
//! adjacency structures: a CSR (out-edges, indexed by source) and a CSC
//! (in-edges, indexed by destination). Undirected graphs are stored
//! symmetrized, so every undirected edge contributes two arcs.
//!
//! ```
//! use vebo_graph::Graph;
//!
//! // The 6-vertex example graph from Figure 3 of the paper.
//! let g = Graph::from_edges(6, &[(0, 4), (1, 4), (2, 4), (3, 4), (4, 5),
//!                                (5, 1), (5, 2), (2, 5), (1, 2), (3, 1),
//!                                (4, 3), (5, 3), (2, 0), (4, 1)], true);
//! assert_eq!(g.num_vertices(), 6);
//! assert_eq!(g.in_degree(4), 4);
//! ```

#![warn(missing_docs)]

pub mod adjacency;
pub mod compress;
pub mod coo;
pub mod datasets;
pub mod degree;
pub mod digest;
pub mod dynamic;
pub mod gen;
pub mod graph;
pub mod io;
pub mod par;
pub mod permute;
pub mod storage;
pub mod types;
pub mod validate;

pub use adjacency::Adjacency;
pub use compress::{CompressedCsr, CompressionStats, NeighborDecoder, DECODE_BLOCK};
pub use coo::Coo;
pub use datasets::{Dataset, DatasetSpec};
pub use digest::digest_u64s;
pub use dynamic::{
    CompactionStats, Compactor, DeltaOverlay, DynamicGraph, EdgeMut, OverlayHalf,
    PendingCompaction, PinnedEpoch,
};
pub use graph::{mix64, Graph};
pub use io::{Format, LoadMode, StreamConfig};
pub use par::{ParMode, SharedSlice};
pub use permute::{Permutation, VertexOrdering};
pub use storage::{GraphStorage, MappedSlice, Mmap, StorageKind};
pub use types::{EdgeId, GraphError, VertexId};
