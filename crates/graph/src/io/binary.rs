//! The versioned binary CSR on-disk format (`.vgr`).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size        field
//! 0       4           magic  "VGR\0"
//! 4       4           version (currently 1)
//! 8       4           flags   (bit 0: directed, bit 1: per-edge weights)
//! 12      8           n       (vertex count)
//! 20      8           m       (stored arc count)
//! 28      (n+1) * 8   CSR offsets
//! ...     m * 4       CSR targets (VertexId)
//! ...     m * 4       CSR weights (f32, only when bit 1 of flags is set)
//! ```
//!
//! Only the out-direction (CSR) is stored; the CSC half is rebuilt by the
//! `O(n + m)` parallel transpose on load. Reads and writes go through
//! bounded scratch buffers, so peak transient memory is a fixed buffer
//! plus the output arrays — the file is never slurped whole.

use crate::adjacency::Adjacency;
use crate::graph::Graph;
use crate::types::{GraphError, VertexId};
use std::io::{BufWriter, Read, Write};

/// The four magic bytes every `.vgr` file starts with.
pub const BINARY_MAGIC: [u8; 4] = *b"VGR\0";

/// The current format version.
pub const BINARY_VERSION: u32 = 1;

const FLAG_DIRECTED: u32 = 1 << 0;
const FLAG_WEIGHTS: u32 = 1 << 1;
const HEADER_LEN: usize = 28;

/// Entries converted per scratch buffer while copying arrays.
const COPY_CHUNK: usize = 1 << 16;

/// Writes `g` in the binary CSR format.
pub fn write_binary_graph<W: Write>(g: &Graph, w: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    let csr = g.csr();
    let mut flags = 0u32;
    if g.is_directed() {
        flags |= FLAG_DIRECTED;
    }
    if csr.has_weights() {
        flags |= FLAG_WEIGHTS;
    }
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&BINARY_MAGIC);
    header.extend_from_slice(&BINARY_VERSION.to_le_bytes());
    header.extend_from_slice(&flags.to_le_bytes());
    header.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
    header.extend_from_slice(&(g.num_edges() as u64).to_le_bytes());
    w.write_all(&header)?;
    let mut buf: Vec<u8> = Vec::with_capacity(COPY_CHUNK * 8);
    for chunk in csr.offsets().chunks(COPY_CHUNK) {
        buf.clear();
        for &o in chunk {
            buf.extend_from_slice(&(o as u64).to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    for chunk in csr.targets().chunks(COPY_CHUNK) {
        buf.clear();
        for &t in chunk {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    if let Some(weights) = csr.raw_weights() {
        for chunk in weights.chunks(COPY_CHUNK) {
            buf.clear();
            for &x in chunk {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Tracks how far into a section we got, for precise truncation errors.
struct SectionReader<R> {
    inner: R,
}

impl<R: Read> SectionReader<R> {
    /// Fills `buf` completely or reports how much of `section` was missing.
    fn read_exact(
        &mut self,
        buf: &mut [u8],
        section: &'static str,
        expected_bytes: usize,
        section_read: usize,
    ) -> Result<(), GraphError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(GraphError::TruncatedBinary {
                        section,
                        expected_bytes,
                        found_bytes: section_read + filled,
                    });
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Reads `count` fixed-width little-endian values through a bounded
    /// scratch buffer.
    fn read_values<T, const W: usize>(
        &mut self,
        count: usize,
        section: &'static str,
        decode: impl Fn([u8; W]) -> T,
    ) -> Result<Vec<T>, GraphError> {
        let expected = count.saturating_mul(W);
        // Capacity is capped so a corrupt header cannot force a huge
        // up-front allocation; the vec grows as real data arrives.
        let mut out: Vec<T> = Vec::with_capacity(count.min(COPY_CHUNK * 16));
        let mut buf = vec![0u8; COPY_CHUNK.min(count.max(1)) * W];
        let mut remaining = count;
        while remaining > 0 {
            let take = remaining.min(COPY_CHUNK);
            let bytes = &mut buf[..take * W];
            self.read_exact(
                bytes,
                section,
                expected,
                (count - remaining).saturating_mul(W),
            )?;
            for v in bytes.chunks_exact(W) {
                out.push(decode(v.try_into().expect("chunks_exact yields W bytes")));
            }
            remaining -= take;
        }
        Ok(out)
    }
}

/// Reads a binary CSR graph. Directedness and weights come from the
/// stored header flags.
pub fn read_binary_graph<R: Read>(r: R) -> Result<Graph, GraphError> {
    let mut r = SectionReader { inner: r };
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header, "header", HEADER_LEN, 0)?;
    if header[..4] != BINARY_MAGIC {
        return Err(GraphError::BadMagic);
    }
    let word = |i: usize| u32::from_le_bytes(header[i..i + 4].try_into().unwrap());
    let version = word(4);
    if version != BINARY_VERSION {
        return Err(GraphError::UnsupportedVersion { version });
    }
    let flags = word(8);
    if flags & !(FLAG_DIRECTED | FLAG_WEIGHTS) != 0 {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("unknown binary flags {flags:#x}"),
        });
    }
    let long = |i: usize| u64::from_le_bytes(header[i..i + 8].try_into().unwrap());
    let n = usize::try_from(long(12)).map_err(|_| GraphError::Parse {
        line: 0,
        message: "vertex count exceeds platform usize".into(),
    })?;
    let m = usize::try_from(long(20)).map_err(|_| GraphError::Parse {
        line: 0,
        message: "edge count exceeds platform usize".into(),
    })?;
    let num_offsets = n.checked_add(1).ok_or(GraphError::Parse {
        line: 0,
        message: "vertex count exceeds platform usize".into(),
    })?;
    let offsets: Vec<usize> =
        r.read_values::<_, 8>(num_offsets, "offsets", |b| u64::from_le_bytes(b) as usize)?;
    let targets: Vec<VertexId> = r.read_values::<_, 4>(m, "targets", u32::from_le_bytes)?;
    let weights = if flags & FLAG_WEIGHTS != 0 {
        Some(r.read_values::<_, 4>(m, "weights", f32::from_le_bytes)?)
    } else {
        None
    };
    let mut trailing = [0u8; 1];
    loop {
        match r.inner.read(&mut trailing) {
            Ok(0) => break,
            Ok(_) => {
                return Err(GraphError::Parse {
                    line: 0,
                    message: "trailing bytes after binary graph data".into(),
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let out = Adjacency::from_raw(offsets, targets, weights)?;
    let into = out.transpose();
    Graph::from_parts(out, into, flags & FLAG_DIRECTED != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (3, 4), (4, 0)], true)
    }

    #[test]
    fn roundtrip_preserves_csr_exactly() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        let h = read_binary_graph(&buf[..]).unwrap();
        assert_eq!(g.csr().offsets(), h.csr().offsets());
        assert_eq!(g.csr().targets(), h.csr().targets());
        assert_eq!(g.csc().offsets(), h.csc().offsets());
        assert_eq!(g.is_directed(), h.is_directed());
    }

    #[test]
    fn roundtrip_undirected() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], false);
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        let h = read_binary_graph(&buf[..]).unwrap();
        assert!(!h.is_directed());
        assert_eq!(g.csr().offsets(), h.csr().offsets());
        assert_eq!(g.csr().targets(), h.csr().targets());
    }

    #[test]
    fn roundtrip_weighted() {
        let g =
            Graph::from_edges_weighted(3, &[(0, 1), (1, 2), (2, 0)], Some(&[0.5, 1.5, 2.5]), true);
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        let h = read_binary_graph(&buf[..]).unwrap();
        assert_eq!(g.csr().raw_weights(), h.csr().raw_weights());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_binary_graph(&b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0"[..])
            .unwrap_err();
        assert_eq!(err, GraphError::BadMagic);
    }

    #[test]
    fn rejects_unsupported_version() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        buf[4] = 99;
        let err = read_binary_graph(&buf[..]).unwrap_err();
        assert_eq!(err, GraphError::UnsupportedVersion { version: 99 });
    }

    #[test]
    fn reports_truncation_with_section() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        // Header cut short.
        let err = read_binary_graph(&buf[..10]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::TruncatedBinary {
                section: "header",
                ..
            }
        ));
        // Offsets cut short.
        let err = read_binary_graph(&buf[..HEADER_LEN + 5]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::TruncatedBinary {
                section: "offsets",
                ..
            }
        ));
        // Targets cut short.
        let err = read_binary_graph(&buf[..buf.len() - 1]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::TruncatedBinary {
                section: "targets",
                ..
            }
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        buf.push(0xFF);
        let err = read_binary_graph(&buf[..]).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }
}
