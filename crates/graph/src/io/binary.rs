//! The versioned binary CSR on-disk format (`.vgr`).
//!
//! Version 2 layout (all integers little-endian, every section start
//! 8-byte aligned so the file can be memory-mapped and used in place):
//!
//! ```text
//! offset  size        field
//! 0       4           magic  "VGR\0"
//! 4       4           version (2)
//! 8       4           flags   (bit 0: directed, bit 1: per-edge weights)
//! 12      8           n       (vertex count)
//! 20      8           m       (stored arc count)
//! 28      4           reserved (zero)
//! 32      (n+1) * 8   CSR offsets (u64)
//! ...     m * 4       CSR targets (VertexId)
//! ...     0..7        zero padding to the next 8-byte boundary
//!                     (only present when weights follow)
//! ...     m * 4       CSR weights (f32, only when bit 1 of flags is set)
//! ```
//!
//! Version 3 stores the neighbor lists delta/varint compressed (see
//! [`crate::compress`]) instead of the raw target array. Its header is
//! v2's plus the byte length of the varint stream, so the whole section
//! layout stays derivable from the header alone:
//!
//! ```text
//! offset  size        field
//! 0..28               as version 2 (version = 3)
//! 28      4           reserved (zero)
//! 32      8           data_len (bytes of the varint stream)
//! 40      (n+1) * 8   CSR offsets (u64)
//! ...     (n+1) * 8   compressed byte offsets (u64)
//! ...     data_len    varint neighbor data (u8)
//! ...     0..7        zero padding to the next 8-byte boundary
//!                     (only present when weights follow)
//! ...     m * 4       CSR weights (f32, only when bit 1 of flags is set)
//! ```
//!
//! On load the varint stream is decoded (and validated against the
//! element offsets) into an owned target array, while the offsets, byte
//! offsets, data, and weights sections stay zero-copy on the mmap path;
//! the resulting graph carries the compressed stream as a
//! [`crate::compress::CompressedCsr`] companion and reports
//! [`crate::StorageKind::Compressed`].
//!
//! Version 1 files (28-byte header, no alignment padding) remain fully
//! readable; their `u64` offsets section starts at byte 28 and is only
//! 4-byte aligned, so the mmap loader copies it instead of borrowing it
//! (see [`mmap_binary_graph`]).
//!
//! Only the out-direction (CSR) is stored; the CSC half is rebuilt by the
//! `O(n + m)` parallel transpose on load. Two load paths exist:
//!
//! * [`read_binary_graph`] — streams through bounded scratch buffers into
//!   owned arrays (peak transient memory is a fixed buffer plus the
//!   output arrays; the file is never slurped whole);
//! * [`mmap_binary_graph`] — maps the file and hands the offsets/targets/
//!   weights sections to the graph zero-copy when the platform and layout
//!   allow (little-endian 64-bit host, aligned v2/v3 layout), falling
//!   back to a copy per section otherwise. Both paths validate
//!   identically and produce graphs that compare equal.

use crate::adjacency::Adjacency;
use crate::compress::CompressedCsr;
use crate::graph::Graph;
use crate::storage::{GraphStorage, MappedSlice, Mmap, Pod};
use crate::types::{GraphError, VertexId};
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// The four magic bytes every `.vgr` file starts with.
pub const BINARY_MAGIC: [u8; 4] = *b"VGR\0";

/// The default plain-CSR version (written by [`write_binary_graph`] for
/// graphs without a compressed companion).
pub const BINARY_VERSION: u32 = 2;

/// The legacy unaligned format version (still readable; writable through
/// [`write_binary_graph_versioned`] for compatibility testing).
pub const BINARY_VERSION_V1: u32 = 1;

/// The compressed-neighbor-list version (written by
/// [`write_binary_graph`] when the graph's CSR carries a compressed
/// companion, or on request through [`write_binary_graph_versioned`]).
pub const BINARY_VERSION_V3: u32 = 3;

const FLAG_DIRECTED: u32 = 1 << 0;
const FLAG_WEIGHTS: u32 = 1 << 1;
/// Version-1 header length (bytes).
const V1_HEADER_LEN: usize = 28;
/// Version-2 header length (bytes): v1 plus 4 reserved bytes, sized so
/// the offsets section starts 8-byte aligned.
const V2_HEADER_LEN: usize = 32;
/// Version-3 header length (bytes): v2 plus the 8-byte `data_len`.
const V3_HEADER_LEN: usize = 40;
/// Alignment every v2/v3 section start is padded to.
const SECTION_ALIGN: usize = 8;

/// Entries converted per scratch buffer while copying arrays.
const COPY_CHUNK: usize = 1 << 16;

/// Byte positions of every section of one `.vgr` file, derived from its
/// header. Shared by the streaming reader, the mmap loader, and the
/// writer so the three can never disagree about where a section lives.
#[derive(Clone, Copy, Debug)]
struct Layout {
    directed: bool,
    weighted: bool,
    offsets_start: usize,
    /// Start of the compressed byte-offsets section (v3 only; equals
    /// `payload_start` for v1/v2, whose layout has no such section).
    byte_offsets_start: usize,
    /// Start of the edge payload: the raw targets array (v1/v2) or the
    /// varint neighbor data (v3).
    payload_start: usize,
    /// Byte length of the edge payload (`m * 4`, or `data_len` for v3).
    payload_len: usize,
    /// Zero bytes between the end of the payload and the weights section
    /// (v2/v3 alignment padding; 0 for v1 or unweighted files).
    pad_len: usize,
    /// Start of the weights section (meaningful only when `weighted`).
    weights_start: usize,
    /// Total file length implied by the header.
    total_len: usize,
}

fn overflow() -> GraphError {
    GraphError::Parse {
        line: 0,
        message: "binary section sizes overflow".into(),
    }
}

impl Layout {
    /// Derives every section position from the header fields. `data_len`
    /// is the v3 varint stream length (ignored for v1/v2).
    fn new(
        version: u32,
        flags: u32,
        n: usize,
        m: usize,
        data_len: usize,
    ) -> Result<Layout, GraphError> {
        let weighted = flags & FLAG_WEIGHTS != 0;
        let header = match version {
            v if v >= 3 => V3_HEADER_LEN,
            2 => V2_HEADER_LEN,
            _ => V1_HEADER_LEN,
        };
        let off_bytes = n
            .checked_add(1)
            .and_then(|c| c.checked_mul(8))
            .ok_or_else(overflow)?;
        let wgt_bytes = m.checked_mul(4).ok_or_else(overflow)?;
        let byte_offsets_start = header.checked_add(off_bytes).ok_or_else(overflow)?;
        let (payload_start, payload_len) = if version >= 3 {
            (
                byte_offsets_start
                    .checked_add(off_bytes)
                    .ok_or_else(overflow)?,
                data_len,
            )
        } else {
            (byte_offsets_start, wgt_bytes)
        };
        let payload_end = payload_start
            .checked_add(payload_len)
            .ok_or_else(overflow)?;
        let (pad_len, weights_start, total_len) = if weighted {
            let ws = if version >= 2 {
                payload_end
                    .checked_next_multiple_of(SECTION_ALIGN)
                    .ok_or_else(overflow)?
            } else {
                payload_end
            };
            (
                ws - payload_end,
                ws,
                ws.checked_add(wgt_bytes).ok_or_else(overflow)?,
            )
        } else {
            (0, payload_end, payload_end)
        };
        Ok(Layout {
            directed: flags & FLAG_DIRECTED != 0,
            weighted,
            offsets_start: header,
            byte_offsets_start,
            payload_start,
            payload_len,
            pad_len,
            weights_start,
            total_len,
        })
    }

    /// Truncation-error name of the edge payload section.
    fn payload_section(version: u32) -> &'static str {
        if version >= 3 {
            "data"
        } else {
            "targets"
        }
    }
}

/// Writes `g` in the aligned binary CSR format: version 3 (compressed
/// neighbor lists) when the CSR carries a compressed companion, version
/// 2 (plain) otherwise — so a graph loaded from a v3 file round-trips
/// back to v3 and plain graphs stay byte-stable on v2.
pub fn write_binary_graph<W: Write>(g: &Graph, w: W) -> Result<(), GraphError> {
    let version = if g.csr().compressed().is_some() {
        BINARY_VERSION_V3
    } else {
        BINARY_VERSION
    };
    write_binary_graph_versioned(g, w, version)
}

/// Writes `g` in an explicit format version: [`BINARY_VERSION`] (the
/// aligned, mmap-friendly plain layout), [`BINARY_VERSION_V3`] (the
/// compressed layout; the neighbor lists are encoded on the fly when the
/// graph carries no companion), or [`BINARY_VERSION_V1`] (the legacy
/// packed layout, kept writable so compatibility with old readers — and
/// the loader's unaligned fallback path — stays testable).
pub fn write_binary_graph_versioned<W: Write>(
    g: &Graph,
    w: W,
    version: u32,
) -> Result<(), GraphError> {
    if version != BINARY_VERSION && version != BINARY_VERSION_V1 && version != BINARY_VERSION_V3 {
        return Err(GraphError::UnsupportedVersion { version });
    }
    let mut w = BufWriter::new(w);
    let csr = g.csr();
    let mut flags = 0u32;
    if g.is_directed() {
        flags |= FLAG_DIRECTED;
    }
    if csr.has_weights() {
        flags |= FLAG_WEIGHTS;
    }
    // v3 needs the varint stream before the header can be sized; reuse
    // an attached companion, or encode one transiently.
    let encoded;
    let comp: Option<&CompressedCsr> = if version >= 3 {
        Some(match csr.compressed() {
            Some(c) => c,
            None => {
                encoded = CompressedCsr::from_csr(csr.offsets(), csr.targets());
                &encoded
            }
        })
    } else {
        None
    };
    let data_len = comp.map_or(0, |c| c.data().len());
    let lay = Layout::new(version, flags, g.num_vertices(), g.num_edges(), data_len)?;
    let mut header = Vec::with_capacity(lay.offsets_start);
    header.extend_from_slice(&BINARY_MAGIC);
    header.extend_from_slice(&version.to_le_bytes());
    header.extend_from_slice(&flags.to_le_bytes());
    header.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
    header.extend_from_slice(&(g.num_edges() as u64).to_le_bytes());
    if version >= 2 {
        header.resize(V2_HEADER_LEN, 0); // reserved bytes
    }
    if version >= 3 {
        header.extend_from_slice(&(data_len as u64).to_le_bytes());
    }
    debug_assert_eq!(header.len(), lay.offsets_start);
    w.write_all(&header)?;
    let mut buf: Vec<u8> = Vec::with_capacity(COPY_CHUNK * 8);
    for chunk in csr.offsets().chunks(COPY_CHUNK) {
        buf.clear();
        for &o in chunk {
            buf.extend_from_slice(&(o as u64).to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    match comp {
        Some(c) => {
            for chunk in c.byte_offsets().chunks(COPY_CHUNK) {
                buf.clear();
                for &o in chunk {
                    buf.extend_from_slice(&(o as u64).to_le_bytes());
                }
                w.write_all(&buf)?;
            }
            w.write_all(c.data())?;
        }
        None => {
            for chunk in csr.targets().chunks(COPY_CHUNK) {
                buf.clear();
                for &t in chunk {
                    buf.extend_from_slice(&t.to_le_bytes());
                }
                w.write_all(&buf)?;
            }
        }
    }
    if let Some(weights) = csr.raw_weights() {
        w.write_all(&vec![0u8; lay.pad_len])?;
        for chunk in weights.chunks(COPY_CHUNK) {
            buf.clear();
            for &x in chunk {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Tracks how far into a section we got, for precise truncation errors.
struct SectionReader<R> {
    inner: R,
}

impl<R: Read> SectionReader<R> {
    /// Fills `buf` completely or reports how much of `section` was missing.
    fn read_exact(
        &mut self,
        buf: &mut [u8],
        section: &'static str,
        expected_bytes: usize,
        section_read: usize,
    ) -> Result<(), GraphError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(GraphError::TruncatedBinary {
                        section,
                        expected_bytes,
                        found_bytes: section_read + filled,
                    });
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Reads `count` fixed-width little-endian values through a bounded
    /// scratch buffer.
    fn read_values<T, const W: usize>(
        &mut self,
        count: usize,
        section: &'static str,
        decode: impl Fn([u8; W]) -> T,
    ) -> Result<Vec<T>, GraphError> {
        let expected = count.saturating_mul(W);
        // Capacity is capped so a corrupt header cannot force a huge
        // up-front allocation; the vec grows as real data arrives.
        let mut out: Vec<T> = Vec::with_capacity(count.min(COPY_CHUNK * 16));
        let mut buf = vec![0u8; COPY_CHUNK.min(count.max(1)) * W];
        let mut remaining = count;
        while remaining > 0 {
            let take = remaining.min(COPY_CHUNK);
            let bytes = &mut buf[..take * W];
            self.read_exact(
                bytes,
                section,
                expected,
                (count - remaining).saturating_mul(W),
            )?;
            for v in bytes.chunks_exact(W) {
                out.push(decode(v.try_into().expect("chunks_exact yields W bytes")));
            }
            remaining -= take;
        }
        Ok(out)
    }
}

/// Validates the fixed header fields and derives the section layout.
/// `header` must hold at least [`V1_HEADER_LEN`] bytes.
fn parse_header(header: &[u8]) -> Result<(u32, u32, usize, usize), GraphError> {
    if header[..4] != BINARY_MAGIC {
        return Err(GraphError::BadMagic);
    }
    let word = |i: usize| u32::from_le_bytes(header[i..i + 4].try_into().unwrap());
    let version = word(4);
    if version != BINARY_VERSION && version != BINARY_VERSION_V1 && version != BINARY_VERSION_V3 {
        return Err(GraphError::UnsupportedVersion { version });
    }
    let flags = word(8);
    if flags & !(FLAG_DIRECTED | FLAG_WEIGHTS) != 0 {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("unknown binary flags {flags:#x}"),
        });
    }
    let long = |i: usize| u64::from_le_bytes(header[i..i + 8].try_into().unwrap());
    let count = |i: usize, what: &str| {
        usize::try_from(long(i)).map_err(|_| GraphError::Parse {
            line: 0,
            message: format!("{what} count exceeds platform usize"),
        })
    };
    let n = count(12, "vertex")?;
    let m = count(20, "edge")?;
    Ok((version, flags, n, m))
}

fn nonzero_reserved() -> GraphError {
    GraphError::Parse {
        line: 0,
        message: "nonzero reserved header bytes".into(),
    }
}

fn nonzero_padding() -> GraphError {
    GraphError::Parse {
        line: 0,
        message: "nonzero alignment padding".into(),
    }
}

fn trailing_bytes() -> GraphError {
    GraphError::Parse {
        line: 0,
        message: "trailing bytes after binary graph data".into(),
    }
}

/// Reads a binary CSR graph (version 1 or 2) through bounded buffers into
/// owned storage. Directedness and weights come from the stored header
/// flags.
pub fn read_binary_graph<R: Read>(r: R) -> Result<Graph, GraphError> {
    let mut r = SectionReader { inner: r };
    let mut header = [0u8; V1_HEADER_LEN];
    r.read_exact(&mut header, "header", V1_HEADER_LEN, 0)?;
    let (version, flags, n, m) = parse_header(&header)?;
    let header_len = if version >= 3 {
        V3_HEADER_LEN
    } else if version >= 2 {
        V2_HEADER_LEN
    } else {
        V1_HEADER_LEN
    };
    if version >= 2 {
        let mut reserved = [0u8; V2_HEADER_LEN - V1_HEADER_LEN];
        r.read_exact(&mut reserved, "header", header_len, V1_HEADER_LEN)?;
        if reserved != [0u8; V2_HEADER_LEN - V1_HEADER_LEN] {
            return Err(nonzero_reserved());
        }
    }
    let data_len = if version >= 3 {
        let mut raw = [0u8; 8];
        r.read_exact(&mut raw, "header", header_len, V2_HEADER_LEN)?;
        usize::try_from(u64::from_le_bytes(raw)).map_err(|_| GraphError::Parse {
            line: 0,
            message: "compressed data length exceeds platform usize".into(),
        })?
    } else {
        0
    };
    let lay = Layout::new(version, flags, n, m, data_len)?;
    let num_offsets = n.checked_add(1).ok_or_else(overflow)?;
    let offsets: Vec<usize> =
        r.read_values::<_, 8>(num_offsets, "offsets", |b| u64::from_le_bytes(b) as usize)?;
    let (targets, comp): (Vec<VertexId>, Option<CompressedCsr>) = if version >= 3 {
        let byte_offsets: Vec<usize> = r.read_values::<_, 8>(num_offsets, "byte_offsets", |b| {
            u64::from_le_bytes(b) as usize
        })?;
        let data: Vec<u8> = r.read_values::<_, 1>(data_len, "data", |b: [u8; 1]| b[0])?;
        let comp = CompressedCsr::from_storage(byte_offsets.into(), data.into())?;
        let targets = comp.decode_to_targets(&offsets)?;
        if targets.len() != m {
            return Err(GraphError::OffsetsEdgeMismatch {
                last_offset: targets.len(),
                num_edges: m,
            });
        }
        (targets, Some(comp))
    } else {
        (
            r.read_values::<_, 4>(m, "targets", u32::from_le_bytes)?,
            None,
        )
    };
    let weights = if lay.weighted {
        if lay.pad_len > 0 {
            let mut pad = [0u8; SECTION_ALIGN];
            r.read_exact(&mut pad[..lay.pad_len], "padding", lay.pad_len, 0)?;
            if pad.iter().any(|&b| b != 0) {
                return Err(nonzero_padding());
            }
        }
        Some(r.read_values::<_, 4>(m, "weights", f32::from_le_bytes)?)
    } else {
        None
    };
    let mut trailing = [0u8; 1];
    loop {
        match r.inner.read(&mut trailing) {
            Ok(0) => break,
            Ok(_) => return Err(trailing_bytes()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let mut out = Adjacency::from_raw(offsets, targets, weights)?;
    if let Some(comp) = comp {
        out = out.with_compressed_storage(comp);
    }
    // The CSC half is rebuilt by the transpose, so a compressed graph
    // re-encodes it: both traversal directions stream varint lists.
    let mut into = out.transpose();
    if out.compressed().is_some() {
        into = into.with_compressed();
    }
    Graph::from_parts(out, into, lay.directed)
}

/// Whether mapped file sections may be borrowed in place on this host:
/// the format is little-endian and `usize` offsets are stored as `u64`,
/// so zero-copy needs a little-endian 64-bit target — and a real
/// `mmap(2)` underneath ([`Mmap::is_zero_copy`]); the read-to-buffer
/// `Mmap` fallback makes no alignment promise, so those hosts always
/// copy (and correctly report [`crate::StorageKind::Owned`]).
fn host_supports_zero_copy() -> bool {
    cfg!(all(target_endian = "little", target_pointer_width = "64")) && Mmap::is_zero_copy()
}

/// Decodes `count` `W`-byte little-endian values out of a mapped byte
/// range — the fallback copy path for sections that cannot be borrowed.
fn copy_section<T, const W: usize>(
    bytes: &[u8],
    start: usize,
    count: usize,
    decode: impl Fn([u8; W]) -> T,
) -> Vec<T> {
    bytes[start..start + count * W]
        .chunks_exact(W)
        .map(|c| decode(c.try_into().expect("chunks_exact yields W bytes")))
        .collect()
}

/// Borrows a section zero-copy when the host and alignment allow,
/// otherwise copies it into owned storage.
fn map_section<T: Pod, const W: usize>(
    map: &Arc<Mmap>,
    start: usize,
    count: usize,
    zero_copy: bool,
    decode: impl Fn([u8; W]) -> T,
) -> GraphStorage<T> {
    if zero_copy {
        // Borrowing reinterprets W on-disk bytes as one T in place, so it
        // is only meaningful when the two widths agree (on 32-bit hosts
        // `usize` != the stored u64 width and `zero_copy` is never set —
        // the decode fallback below handles the narrowing instead).
        debug_assert_eq!(std::mem::size_of::<T>(), W);
        if let Some(view) = MappedSlice::<T>::try_new(Arc::clone(map), start, count) {
            return GraphStorage::Mapped(view);
        }
    }
    copy_section(map.as_bytes(), start, count, decode).into()
}

/// Memory-maps a `.vgr` file and builds the graph from it.
///
/// On little-endian 64-bit hosts reading a version-2 (aligned) file, the
/// offsets, targets, and weights arrays are *borrowed from the mapping*
/// — zero bytes copied, the kernel pages them in on demand — and the
/// returned graph's CSR reports
/// [`StorageKind::Mapped`](crate::storage::StorageKind). Version-1 files
/// (whose offsets are only 4-byte aligned), 32-bit hosts, and big-endian
/// hosts transparently fall back to copying each affected section; the
/// result is identical either way. The CSC half is always rebuilt (owned)
/// by the parallel transpose, exactly as the streaming reader does.
///
/// Validation matches [`read_binary_graph`] section for section: bad
/// magic, unsupported versions, unknown flags, nonzero reserved/padding
/// bytes, section-precise [`GraphError::TruncatedBinary`] when the file
/// is shorter than its header promises, and trailing-byte detection.
pub fn mmap_binary_graph(path: impl AsRef<Path>) -> Result<Graph, GraphError> {
    graph_from_map(Arc::new(Mmap::map_path(path)?))
}

/// The mmap loader body, testable on any prebuilt mapping.
fn graph_from_map(map: Arc<Mmap>) -> Result<Graph, GraphError> {
    let bytes = map.as_bytes();
    let truncated =
        |section: &'static str, expected: usize, start: usize| GraphError::TruncatedBinary {
            section,
            expected_bytes: expected,
            found_bytes: bytes.len().saturating_sub(start),
        };
    if bytes.len() < V1_HEADER_LEN {
        return Err(truncated("header", V1_HEADER_LEN, 0));
    }
    let (version, flags, n, m) = parse_header(bytes)?;
    let header_len = if version >= 3 {
        V3_HEADER_LEN
    } else if version >= 2 {
        V2_HEADER_LEN
    } else {
        V1_HEADER_LEN
    };
    if version >= 2 {
        if bytes.len() < header_len {
            return Err(truncated("header", header_len, 0));
        }
        if bytes[V1_HEADER_LEN..V2_HEADER_LEN].iter().any(|&b| b != 0) {
            return Err(nonzero_reserved());
        }
    }
    let data_len = if version >= 3 {
        let raw = u64::from_le_bytes(bytes[V2_HEADER_LEN..V3_HEADER_LEN].try_into().unwrap());
        usize::try_from(raw).map_err(|_| GraphError::Parse {
            line: 0,
            message: "compressed data length exceeds platform usize".into(),
        })?
    } else {
        0
    };
    let lay = Layout::new(version, flags, n, m, data_len)?;
    let num_offsets = n.checked_add(1).ok_or_else(overflow)?;
    // Section-precise truncation checks, in file order.
    if bytes.len() < lay.byte_offsets_start {
        return Err(truncated("offsets", num_offsets * 8, lay.offsets_start));
    }
    if version >= 3 && bytes.len() < lay.payload_start {
        return Err(truncated(
            "byte_offsets",
            num_offsets * 8,
            lay.byte_offsets_start,
        ));
    }
    let payload_end = lay.payload_start + lay.payload_len;
    if bytes.len() < payload_end {
        return Err(truncated(
            Layout::payload_section(version),
            lay.payload_len,
            lay.payload_start,
        ));
    }
    if lay.weighted {
        if bytes.len() < lay.weights_start {
            return Err(truncated("padding", lay.pad_len, payload_end));
        }
        if bytes[payload_end..lay.weights_start]
            .iter()
            .any(|&b| b != 0)
        {
            return Err(nonzero_padding());
        }
        if bytes.len() < lay.total_len {
            return Err(truncated("weights", m * 4, lay.weights_start));
        }
    }
    if bytes.len() > lay.total_len {
        return Err(trailing_bytes());
    }
    // Version 1 packs the u64 offsets at byte 28 — 4-byte aligned only —
    // so only the aligned v2+ layouts are eligible for borrowing.
    let zero_copy = host_supports_zero_copy() && version >= 2;
    let offsets: GraphStorage<usize> =
        map_section::<usize, 8>(&map, lay.offsets_start, num_offsets, zero_copy, |b| {
            u64::from_le_bytes(b) as usize
        });
    let weights: Option<GraphStorage<f32>> = lay
        .weighted
        .then(|| map_section::<f32, 4>(&map, lay.weights_start, m, zero_copy, f32::from_le_bytes));
    let out = if version >= 3 {
        // v3 stores no raw targets: borrow the byte_offsets and varint
        // data sections zero-copy, then decode (validated) into an owned
        // targets array. The compressed companion stays attached so the
        // graph reports `StorageKind::Compressed` and kernels can stream
        // the mapped varint bytes directly.
        let byte_offsets: GraphStorage<usize> =
            map_section::<usize, 8>(&map, lay.byte_offsets_start, num_offsets, zero_copy, |b| {
                u64::from_le_bytes(b) as usize
            });
        let data: GraphStorage<u8> = map_section::<u8, 1>(
            &map,
            lay.payload_start,
            data_len,
            zero_copy,
            |b: [u8; 1]| b[0],
        );
        let comp = CompressedCsr::from_storage(byte_offsets, data)?;
        let offsets_vec = offsets.as_slice().to_vec();
        let targets = comp.decode_to_targets(&offsets_vec)?;
        if targets.len() != m {
            return Err(GraphError::OffsetsEdgeMismatch {
                last_offset: targets.len(),
                num_edges: m,
            });
        }
        Adjacency::from_storage(offsets, targets.into(), weights)?.with_compressed_storage(comp)
    } else {
        let targets: GraphStorage<VertexId> =
            map_section::<VertexId, 4>(&map, lay.payload_start, m, zero_copy, u32::from_le_bytes);
        Adjacency::from_storage(offsets, targets, weights)?
    };
    // As in the streaming reader: the transposed half is re-encoded so
    // compressed graphs stay compressed in both traversal directions.
    let mut into = out.transpose();
    if out.compressed().is_some() {
        into = into.with_compressed();
    }
    Graph::from_parts(out, into, lay.directed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::StorageKind;

    fn sample() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (3, 4), (4, 0)], true)
    }

    fn temp_vgr(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("vebo-binary-{name}-{}.vgr", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    /// Runs `f` on both load paths (buffered read and mmap through a temp
    /// file) and asserts they produce the same outcome.
    fn both_paths(name: &str, bytes: &[u8]) -> [Result<Graph, GraphError>; 2] {
        let buffered = read_binary_graph(bytes);
        let path = temp_vgr(name, bytes);
        let mapped = mmap_binary_graph(&path);
        std::fs::remove_file(&path).ok();
        [buffered, mapped]
    }

    #[test]
    fn roundtrip_preserves_csr_exactly() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        for h in both_paths("roundtrip", &buf) {
            let h = h.unwrap();
            assert_eq!(g.csr().offsets(), h.csr().offsets());
            assert_eq!(g.csr().targets(), h.csr().targets());
            assert_eq!(g.csc().offsets(), h.csc().offsets());
            assert_eq!(g.is_directed(), h.is_directed());
        }
    }

    #[test]
    fn v2_sections_are_aligned() {
        let g = sample().with_hash_weights(8);
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        let lay = Layout::new(2, FLAG_DIRECTED | FLAG_WEIGHTS, 5, 5, 0).unwrap();
        assert_eq!(lay.offsets_start % 8, 0);
        assert_eq!(lay.payload_start % 8, 0);
        assert_eq!(lay.weights_start % 8, 0);
        assert_eq!(buf.len(), lay.total_len);
    }

    #[test]
    fn v1_files_remain_readable() {
        let g = sample();
        let mut v1 = Vec::new();
        write_binary_graph_versioned(&g, &mut v1, BINARY_VERSION_V1).unwrap();
        assert_eq!(&v1[4..8], &1u32.to_le_bytes());
        for h in both_paths("v1compat", &v1) {
            let h = h.unwrap();
            assert_eq!(g.csr().offsets(), h.csr().offsets());
            assert_eq!(g.csr().targets(), h.csr().targets());
        }
    }

    #[test]
    fn v1_weighted_files_remain_readable() {
        let g =
            Graph::from_edges_weighted(3, &[(0, 1), (1, 2), (2, 0)], Some(&[0.5, 1.5, 2.5]), true);
        let mut v1 = Vec::new();
        write_binary_graph_versioned(&g, &mut v1, BINARY_VERSION_V1).unwrap();
        for h in both_paths("v1weights", &v1) {
            let h = h.unwrap();
            assert_eq!(g.csr().raw_weights(), h.csr().raw_weights());
            // v1 is unaligned, so even the mmap path must report owned.
            assert_eq!(h.storage_kind(), StorageKind::Owned);
        }
    }

    #[test]
    fn mmap_of_v2_is_zero_copy_on_supported_hosts() {
        let g = sample().with_hash_weights(4);
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        let path = temp_vgr("zerocopy", &buf);
        let h = mmap_binary_graph(&path).unwrap();
        if cfg!(all(target_endian = "little", target_pointer_width = "64")) {
            assert_eq!(h.csr().storage_kind(), StorageKind::Mapped);
        } else {
            assert_eq!(h.csr().storage_kind(), StorageKind::Owned);
        }
        // The CSC is always rebuilt into owned storage.
        assert_eq!(h.csc().storage_kind(), StorageKind::Owned);
        assert_eq!(g.csr().targets(), h.csr().targets());
        assert_eq!(g.csr().raw_weights(), h.csr().raw_weights());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_graph_outlives_source_file_handle() {
        // Deleting the path after mapping must not invalidate the data
        // (POSIX keeps mapped pages alive until munmap).
        let g = sample();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        let path = temp_vgr("unlink", &buf);
        let h = mmap_binary_graph(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.csr().targets(), h.csr().targets());
        let i = h.clone(); // cheap Arc bump for mapped sections
        assert_eq!(i.csr().offsets(), g.csr().offsets());
    }

    #[test]
    fn roundtrip_undirected() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], false);
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        for h in both_paths("undirected", &buf) {
            let h = h.unwrap();
            assert!(!h.is_directed());
            assert_eq!(g.csr().offsets(), h.csr().offsets());
            assert_eq!(g.csr().targets(), h.csr().targets());
        }
    }

    #[test]
    fn roundtrip_weighted() {
        let g =
            Graph::from_edges_weighted(3, &[(0, 1), (1, 2), (2, 0)], Some(&[0.5, 1.5, 2.5]), true);
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        for h in both_paths("weighted", &buf) {
            assert_eq!(g.csr().raw_weights(), h.unwrap().csr().raw_weights());
        }
    }

    #[test]
    fn roundtrip_odd_edge_count_pads_weights() {
        // 3 edges: targets end 4-mod-8 aligned, so v2 inserts 4 zero
        // bytes before the weights section.
        let g =
            Graph::from_edges_weighted(3, &[(0, 1), (1, 2), (2, 0)], Some(&[9.0, 8.0, 7.0]), true);
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        let lay = Layout::new(2, FLAG_DIRECTED | FLAG_WEIGHTS, 3, 3, 0).unwrap();
        assert_eq!(lay.pad_len, 4);
        for h in both_paths("oddpad", &buf) {
            assert_eq!(g.csr().raw_weights(), h.unwrap().csr().raw_weights());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let bytes = b"NOPE\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0";
        for err in both_paths("badmagic", &bytes[..]) {
            assert_eq!(err.unwrap_err(), GraphError::BadMagic);
        }
    }

    #[test]
    fn rejects_unsupported_version() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        buf[4] = 99;
        for err in both_paths("badversion", &buf) {
            assert_eq!(
                err.unwrap_err(),
                GraphError::UnsupportedVersion { version: 99 }
            );
        }
        let mut sink = Vec::new();
        assert_eq!(
            write_binary_graph_versioned(&g, &mut sink, 99).unwrap_err(),
            GraphError::UnsupportedVersion { version: 99 }
        );
    }

    #[test]
    fn rejects_nonzero_reserved_bytes() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        buf[V1_HEADER_LEN] = 7;
        for err in both_paths("reserved", &buf) {
            assert!(matches!(err.unwrap_err(), GraphError::Parse { .. }));
        }
    }

    #[test]
    fn rejects_nonzero_padding_bytes() {
        let g =
            Graph::from_edges_weighted(3, &[(0, 1), (1, 2), (2, 0)], Some(&[1.0, 2.0, 3.0]), true);
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        let lay = Layout::new(2, FLAG_DIRECTED | FLAG_WEIGHTS, 3, 3, 0).unwrap();
        assert!(lay.pad_len > 0);
        buf[lay.weights_start - 1] = 1;
        for err in both_paths("padbytes", &buf) {
            assert!(matches!(err.unwrap_err(), GraphError::Parse { .. }));
        }
    }

    /// Truncation at every section boundary must name the right section
    /// with the right byte counts — on both load paths.
    #[test]
    fn reports_truncation_with_section() {
        let g = sample().with_hash_weights(4);
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        let lay = Layout::new(2, FLAG_DIRECTED | FLAG_WEIGHTS, 5, 5, 0).unwrap();
        let cases: [(usize, &str); 5] = [
            (10, "header"),
            (lay.offsets_start + 5, "offsets"),
            (lay.payload_start + 3, "targets"),
            (lay.payload_start + 5 * 4 + 1, "padding"),
            (lay.total_len - 1, "weights"),
        ];
        for (cut, want) in cases {
            for err in both_paths("trunc", &buf[..cut]) {
                match err.unwrap_err() {
                    GraphError::TruncatedBinary { section, .. } => {
                        assert_eq!(section, want, "cut at {cut}");
                    }
                    other => panic!("cut at {cut}: unexpected error {other}"),
                }
            }
        }
        // Exact truncation boundary between header and offsets: the
        // offsets section is missing entirely.
        for err in both_paths("trunc-edge", &buf[..lay.offsets_start]) {
            assert!(matches!(
                err.unwrap_err(),
                GraphError::TruncatedBinary {
                    section: "offsets",
                    found_bytes: 0,
                    ..
                }
            ));
        }
    }

    #[test]
    fn v1_truncation_is_section_precise_too() {
        let g = sample();
        let mut v1 = Vec::new();
        write_binary_graph_versioned(&g, &mut v1, BINARY_VERSION_V1).unwrap();
        for err in both_paths("v1trunc-off", &v1[..V1_HEADER_LEN + 5]) {
            assert!(matches!(
                err.unwrap_err(),
                GraphError::TruncatedBinary {
                    section: "offsets",
                    ..
                }
            ));
        }
        for err in both_paths("v1trunc-tgt", &v1[..v1.len() - 1]) {
            assert!(matches!(
                err.unwrap_err(),
                GraphError::TruncatedBinary {
                    section: "targets",
                    ..
                }
            ));
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        buf.push(0xFF);
        for err in both_paths("trailing", &buf) {
            assert!(matches!(err.unwrap_err(), GraphError::Parse { .. }));
        }
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::from_edges(0, &[], true);
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        for h in both_paths("empty", &buf) {
            let h = h.unwrap();
            assert_eq!(h.num_vertices(), 0);
            assert_eq!(h.num_edges(), 0);
        }
    }

    #[test]
    fn v3_roundtrip_preserves_csr_exactly() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary_graph_versioned(&g, &mut buf, BINARY_VERSION_V3).unwrap();
        assert_eq!(&buf[4..8], &3u32.to_le_bytes());
        for h in both_paths("v3roundtrip", &buf) {
            let h = h.unwrap();
            assert_eq!(g.csr().offsets(), h.csr().offsets());
            assert_eq!(g.csr().targets(), h.csr().targets());
            assert_eq!(g.csc().offsets(), h.csc().offsets());
            assert_eq!(g.is_directed(), h.is_directed());
            assert_eq!(h.storage_kind(), StorageKind::Compressed);
        }
    }

    #[test]
    fn v3_roundtrip_weighted_with_odd_padding() {
        let g =
            Graph::from_edges_weighted(3, &[(0, 1), (1, 2), (2, 0)], Some(&[0.5, 1.5, 2.5]), true);
        let mut buf = Vec::new();
        write_binary_graph_versioned(&g, &mut buf, BINARY_VERSION_V3).unwrap();
        for h in both_paths("v3weighted", &buf) {
            let h = h.unwrap();
            assert_eq!(g.csr().raw_weights(), h.csr().raw_weights());
            assert_eq!(g.csr().targets(), h.csr().targets());
        }
    }

    #[test]
    fn compressed_graph_auto_selects_v3_and_reloads_compressed() {
        let g = sample().with_compressed();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        assert_eq!(&buf[4..8], &3u32.to_le_bytes());
        for h in both_paths("v3auto", &buf) {
            let h = h.unwrap();
            assert_eq!(h.storage_kind(), StorageKind::Compressed);
            assert_eq!(g.csr().targets(), h.csr().targets());
            // Re-saving the reloaded graph stays on v3: the round trip is
            // stable under repeated load/save cycles.
            let mut again = Vec::new();
            write_binary_graph(&h, &mut again).unwrap();
            assert_eq!(buf, again);
        }
    }

    #[test]
    fn plain_graph_still_writes_v2_by_default() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        assert_eq!(&buf[4..8], &2u32.to_le_bytes());
    }

    #[test]
    fn v3_mmap_borrows_varint_sections_on_supported_hosts() {
        let g = sample().with_compressed();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        let path = temp_vgr("v3zerocopy", &buf);
        let h = mmap_binary_graph(&path).unwrap();
        assert_eq!(h.storage_kind(), StorageKind::Compressed);
        let comp = h.csr().compressed().unwrap();
        if cfg!(all(target_endian = "little", target_pointer_width = "64")) {
            assert_eq!(comp.section_kind(), StorageKind::Mapped);
        } else {
            assert_eq!(comp.section_kind(), StorageKind::Owned);
        }
        assert_eq!(g.csr().targets(), h.csr().targets());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_truncation_names_compressed_sections() {
        let g = sample().with_hash_weights(4).with_compressed();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        let data_len = g.csr().compressed().unwrap().data().len();
        let lay = Layout::new(3, FLAG_DIRECTED | FLAG_WEIGHTS, 5, 5, data_len).unwrap();
        let cases: [(usize, &str); 6] = [
            (V2_HEADER_LEN + 3, "header"),
            (lay.offsets_start + 5, "offsets"),
            (lay.byte_offsets_start + 3, "byte_offsets"),
            (lay.payload_start + 1, "data"),
            (lay.payload_start + lay.payload_len + 1, "padding"),
            (lay.total_len - 1, "weights"),
        ];
        for (cut, want) in cases {
            if cut >= buf.len() {
                continue; // no padding for this data_len
            }
            for err in both_paths("v3trunc", &buf[..cut]) {
                match err.unwrap_err() {
                    GraphError::TruncatedBinary { section, .. } => {
                        assert_eq!(section, want, "cut at {cut}");
                    }
                    other => panic!("cut at {cut}: unexpected error {other}"),
                }
            }
        }
    }

    #[test]
    fn v3_rejects_corrupt_varint_data() {
        let g = sample().with_compressed();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        let data_len = g.csr().compressed().unwrap().data().len();
        let lay = Layout::new(3, FLAG_DIRECTED, 5, 5, data_len).unwrap();
        // Smash the first varint byte: the decoded targets no longer match
        // the element offsets, so validation must reject the file.
        buf[lay.payload_start] = 0xFF;
        for err in both_paths("v3corrupt", &buf) {
            assert!(err.is_err());
        }
    }

    #[test]
    fn v3_empty_graph_round_trips() {
        let g = Graph::from_edges(0, &[], true).with_compressed();
        let mut buf = Vec::new();
        write_binary_graph(&g, &mut buf).unwrap();
        for h in both_paths("v3empty", &buf) {
            let h = h.unwrap();
            assert_eq!(h.num_vertices(), 0);
            assert_eq!(h.num_edges(), 0);
        }
    }
}
