//! Chunked, parallel text-graph parsing.
//!
//! The streaming core reads the input in fixed-size byte chunks aligned to
//! line boundaries ([`LineChunker`]), gathers a small batch of chunks, and
//! parses the batch in parallel on rayon (gated by [`ParMode`]). Per-chunk
//! results are concatenated with a prefix-sum scatter, so the parallel
//! parse is bit-identical to the sequential one: same edges in the same
//! order, and on malformed input the same first-in-file error.
//!
//! Peak parser-side memory is `O(batch * chunk_size + output)`: the input
//! text is never materialized whole, only the decoded edges/tokens are.

use crate::adjacency::Adjacency;
use crate::graph::Graph;
use crate::io::is_comment;
use crate::par::{ParMode, SharedSlice};
use crate::types::{GraphError, VertexId};
use rayon::prelude::*;
use std::io::Read;

/// Configuration of the streaming reader.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Target bytes per line-aligned chunk. Chunks can exceed this only
    /// when a single line is longer than the chunk (the chunker always
    /// emits whole lines).
    pub chunk_size: usize,
    /// Whether chunk batches parse in parallel. Under [`ParMode::Auto`]
    /// the parallel path engages for batches past the usual size
    /// threshold when more than one rayon thread is configured; both
    /// paths produce bit-identical graphs and errors.
    pub mode: ParMode,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            chunk_size: 4 << 20,
            mode: ParMode::Auto,
        }
    }
}

impl StreamConfig {
    /// A config with an explicit chunk size (floored at 16 bytes).
    pub fn with_chunk_size(chunk_size: usize) -> StreamConfig {
        StreamConfig {
            chunk_size: chunk_size.max(16),
            ..StreamConfig::default()
        }
    }

    /// A config pinned to the sequential reference path.
    pub fn sequential() -> StreamConfig {
        StreamConfig {
            mode: ParMode::Sequential,
            ..StreamConfig::default()
        }
    }

    /// How many chunks to gather before each parse round. One chunk per
    /// round in sequential mode (minimal buffering); a few per thread
    /// otherwise so rayon has work to spread.
    fn batch_chunks(&self) -> usize {
        match self.mode {
            ParMode::Sequential => 1,
            _ => (2 * rayon::current_num_threads()).max(2),
        }
    }
}

/// A run of whole input lines, plus its position in the file.
#[derive(Clone, Debug)]
pub struct LineChunk {
    /// The raw bytes: complete lines, each ending in `\n` except possibly
    /// the file's final line.
    pub bytes: Vec<u8>,
    /// 1-based line number of the first line in this chunk.
    pub first_line: usize,
    /// Number of lines that start inside this chunk.
    pub lines: usize,
}

/// Splits any [`Read`] into line-aligned chunks of roughly
/// [`StreamConfig::chunk_size`] bytes.
///
/// The chunker never holds more than one chunk plus the trailing partial
/// line in memory ([`LineChunker::peak_buffered`] reports the observed
/// maximum), and it never asks the reader for more than the chunk size in
/// a single `read` call, so it composes with readers that return short
/// counts.
pub struct LineChunker<R> {
    inner: R,
    chunk_size: usize,
    carry: Vec<u8>,
    /// Fixed landing buffer for `read` calls, zeroed once at construction
    /// (appending straight into the chunk would re-memset the whole
    /// remaining chunk before every short read).
    scratch: Vec<u8>,
    next_line: usize,
    done: bool,
    failed: bool,
    peak: usize,
}

impl<R: Read> LineChunker<R> {
    /// Wraps `inner`, targeting `chunk_size` bytes per chunk.
    pub fn new(inner: R, chunk_size: usize) -> LineChunker<R> {
        let chunk_size = chunk_size.max(16);
        LineChunker {
            inner,
            chunk_size,
            carry: Vec::new(),
            scratch: vec![0u8; chunk_size.min(64 * 1024)],
            next_line: 1,
            done: false,
            failed: false,
            peak: 0,
        }
    }

    /// Maximum number of input bytes buffered at any point so far: bounded
    /// by `chunk_size` plus the longest line in the input.
    pub fn peak_buffered(&self) -> usize {
        self.peak
    }

    /// 1-based number of the line the next chunk would start on; after
    /// exhaustion, one past the last line of the input.
    pub fn next_line(&self) -> usize {
        self.next_line
    }
}

impl<R: Read> Iterator for LineChunker<R> {
    type Item = std::io::Result<LineChunk>;

    fn next(&mut self) -> Option<std::io::Result<LineChunk>> {
        if self.failed || (self.done && self.carry.is_empty()) {
            return None;
        }
        let mut buf = std::mem::take(&mut self.carry);
        // Position of the last newline seen in `buf`, if any. The carry is
        // always a partial line, so it starts out newline-free.
        let mut last_nl: Option<usize> = None;
        while !self.done && (buf.len() < self.chunk_size || last_nl.is_none()) {
            let old = buf.len();
            // Past `chunk_size` we are extending a single line longer than
            // the chunk, hunting its newline (or EOF): keep the reads
            // full-scratch-sized, never dribbling single bytes.
            let want = if old < self.chunk_size {
                (self.chunk_size - old).min(self.scratch.len())
            } else {
                self.scratch.len()
            };
            match self.inner.read(&mut self.scratch[..want]) {
                Ok(0) => self.done = true,
                Ok(n) => {
                    buf.extend_from_slice(&self.scratch[..n]);
                    if let Some(p) = buf[old..old + n].iter().rposition(|&b| b == b'\n') {
                        last_nl = Some(old + p);
                    }
                    self.peak = self.peak.max(buf.len());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        if !self.done {
            // Cut after the last newline; the tail is the next chunk's head.
            let cut = last_nl.expect("loop exits with a newline before EOF") + 1;
            self.carry = buf.split_off(cut);
        }
        if buf.is_empty() {
            return None;
        }
        let newlines = buf.iter().filter(|&&b| b == b'\n').count();
        // A chunk only ends without '\n' at EOF, so counting the partial
        // line keeps `next_line` at one past the input's last line.
        let trailing_partial = *buf.last().unwrap() != b'\n';
        let chunk = LineChunk {
            first_line: self.next_line,
            lines: newlines + usize::from(trailing_partial),
            bytes: buf,
        };
        self.next_line += chunk.lines;
        Some(Ok(chunk))
    }
}

/// Iterates the complete lines of a chunk with their 1-based file line
/// numbers.
fn chunk_lines(chunk: &LineChunk) -> impl Iterator<Item = (usize, &[u8])> {
    chunk
        .bytes
        .split(|&b| b == b'\n')
        .enumerate()
        .filter(|(_, raw)| !raw.is_empty())
        .map(move |(i, raw)| (chunk.first_line + i, raw))
}

fn utf8_line(line: usize, raw: &[u8]) -> Result<&str, GraphError> {
    std::str::from_utf8(raw).map_err(|e| GraphError::Parse {
        line,
        message: format!("invalid UTF-8: {e}"),
    })
}

// ---------------------------------------------------------------------------
// Edge lists
// ---------------------------------------------------------------------------

/// One parsed edge-list chunk: the `(src, dst)` pairs plus the largest
/// endpoint seen.
type EdgeChunk = (Vec<(VertexId, VertexId)>, u64);

/// Parses one chunk of a whitespace edge list into `(src, dst)` pairs,
/// returning the pairs and the largest endpoint seen.
fn parse_edge_chunk(chunk: &LineChunk) -> Result<EdgeChunk, GraphError> {
    // One edge per line is the common case; reserve for it.
    let mut edges = Vec::with_capacity(chunk.lines);
    let mut max_v = 0u64;
    for (line, raw) in chunk_lines(chunk) {
        let t = utf8_line(line, raw)?.trim();
        if t.is_empty() || is_comment(t) {
            continue;
        }
        let mut it = t.split_whitespace();
        let mut endpoint = || -> Result<u64, GraphError> {
            it.next()
                .ok_or(GraphError::Parse {
                    line,
                    message: "missing endpoint".into(),
                })?
                .parse::<u64>()
                .map_err(|e| GraphError::Parse {
                    line,
                    message: e.to_string(),
                })
        };
        let u = endpoint()?;
        let v = endpoint()?;
        if u > VertexId::MAX as u64 || v > VertexId::MAX as u64 {
            return Err(GraphError::VertexOutOfRangeAt {
                line,
                vertex: u.max(v),
                num_vertices: VertexId::MAX as usize,
            });
        }
        max_v = max_v.max(u).max(v);
        edges.push((u as VertexId, v as VertexId));
    }
    Ok((edges, max_v))
}

/// Extends `dst` with every `parts` buffer in order. Large batches copy in
/// parallel: the per-part lengths prefix-sum into disjoint target segments.
fn concat_into<T: Copy + Default + Send + Sync>(
    dst: &mut Vec<T>,
    parts: &[Vec<T>],
    parallel: bool,
) {
    let old = dst.len();
    let mut starts = Vec::with_capacity(parts.len() + 1);
    starts.push(0usize);
    for p in parts {
        starts.push(starts.last().unwrap() + p.len());
    }
    let total = *starts.last().unwrap();
    if !parallel {
        dst.reserve(total);
        for p in parts {
            dst.extend_from_slice(p);
        }
        return;
    }
    dst.resize(old + total, T::default());
    let shared = SharedSlice::new(&mut dst[old..]);
    (0..parts.len()).into_par_iter().for_each(|i| {
        // SAFETY: segments [starts[i], starts[i+1]) are pairwise disjoint.
        let seg = unsafe { shared.slice_mut(starts[i], starts[i + 1]) };
        seg.copy_from_slice(&parts[i]);
    });
}

/// Recognizes the `# vertices <n> ...` header comment our own writer
/// emits on the first line, so edge-list round-trips preserve trailing
/// isolated vertices (`n` is otherwise inferred as max endpoint + 1).
/// Hints beyond the representable vertex-id range are ignored rather
/// than trusted into a huge allocation.
fn edge_list_header_hint(first_chunk: &LineChunk) -> Option<usize> {
    let raw = first_chunk.bytes.split(|&b| b == b'\n').next()?;
    let t = std::str::from_utf8(raw).ok()?.trim();
    let rest = t
        .strip_prefix('#')
        .or_else(|| t.strip_prefix('%'))?
        .trim_start();
    let mut it = rest.split_whitespace();
    if it.next()? != "vertices" {
        return None;
    }
    let n: usize = it.next()?.parse().ok()?;
    (n <= VertexId::MAX as usize + 1).then_some(n)
}

/// Drives the chunk-batch loop shared by both text readers: gathers up
/// to a batch of line-aligned chunks, hands each batch to `handle`, and
/// returns the 1-based number of the input's last line (0 for empty
/// input). Keeping this scaffold in one place keeps the two readers'
/// batching, error, and EOF behavior in lockstep.
fn process_batches<R: Read>(
    r: R,
    cfg: &StreamConfig,
    mut handle: impl FnMut(&[LineChunk]) -> Result<(), GraphError>,
) -> Result<usize, GraphError> {
    let mut chunker = LineChunker::new(r, cfg.chunk_size);
    let batch = cfg.batch_chunks();
    let mut pending: Vec<LineChunk> = Vec::new();
    loop {
        let mut eof = false;
        while pending.len() < batch {
            match chunker.next() {
                Some(Ok(c)) => pending.push(c),
                Some(Err(e)) => return Err(e.into()),
                None => {
                    eof = true;
                    break;
                }
            }
        }
        if pending.is_empty() {
            break;
        }
        handle(&pending)?;
        pending.clear();
        if eof {
            break;
        }
    }
    Ok(chunker.next_line().saturating_sub(1))
}

/// Streaming edge-list reader: chunked input, batch-parallel parsing.
pub fn read_edge_list_with<R: Read>(
    r: R,
    directed: bool,
    min_vertices: Option<usize>,
    cfg: &StreamConfig,
) -> Result<Graph, GraphError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_v = 0u64;
    let mut header_hint: Option<usize> = None;
    let mut first = true;
    process_batches(r, cfg, |pending| {
        if first {
            header_hint = edge_list_header_hint(&pending[0]);
            first = false;
        }
        let bytes: usize = pending.iter().map(|c| c.bytes.len()).sum();
        if pending.len() > 1 && cfg.mode.go_parallel(bytes) {
            let parts: Vec<Result<EdgeChunk, GraphError>> = (0..pending.len())
                .into_par_iter()
                .map(|i| parse_edge_chunk(&pending[i]))
                .collect();
            let mut bufs = Vec::with_capacity(parts.len());
            for part in parts {
                // First error in chunk order == first error in file order.
                let (chunk_edges, chunk_max) = part?;
                max_v = max_v.max(chunk_max);
                bufs.push(chunk_edges);
            }
            concat_into(&mut edges, &bufs, true);
        } else {
            for chunk in pending {
                let (chunk_edges, chunk_max) = parse_edge_chunk(chunk)?;
                max_v = max_v.max(chunk_max);
                edges.extend_from_slice(&chunk_edges);
            }
        }
        Ok(())
    })?;
    let n = (max_v as usize + 1)
        .max(min_vertices.unwrap_or(0))
        .max(header_hint.unwrap_or(0))
        .max(usize::from(!edges.is_empty()));
    Ok(Graph::from_edges(n, &edges, directed))
}

// ---------------------------------------------------------------------------
// Ligra AdjacencyGraph
// ---------------------------------------------------------------------------

/// One chunk's numeric tokens, with enough position info to map any token
/// back to its 1-based input line.
struct TokenChunk {
    values: Vec<u64>,
    /// `(index into values of a line's first token, that line's number)`,
    /// one entry per token-bearing line, ascending.
    marks: Vec<(u32, usize)>,
}

impl TokenChunk {
    fn line_of(&self, token_idx: usize) -> usize {
        match self
            .marks
            .binary_search_by(|&(off, _)| (off as usize).cmp(&token_idx))
        {
            Ok(i) => self.marks[i].1,
            Err(0) => self.marks.first().map_or(0, |&(_, l)| l),
            Err(i) => self.marks[i - 1].1,
        }
    }
}

/// Parses one chunk of whitespace-separated numeric tokens. When
/// `expect_header` is set, the first contentful line must be the literal
/// `AdjacencyGraph` header; returns whether the header was consumed.
fn parse_token_chunk(
    chunk: &LineChunk,
    expect_header: bool,
) -> Result<(TokenChunk, bool), GraphError> {
    let mut out = TokenChunk {
        values: Vec::with_capacity(chunk.lines),
        marks: Vec::new(),
    };
    let mut header_seen = !expect_header;
    for (line, raw) in chunk_lines(chunk) {
        let t = utf8_line(line, raw)?.trim();
        if t.is_empty() || is_comment(t) {
            continue;
        }
        if !header_seen {
            if t != "AdjacencyGraph" {
                return Err(GraphError::Parse {
                    line,
                    message: format!("expected 'AdjacencyGraph' header, got '{t}'"),
                });
            }
            header_seen = true;
            continue;
        }
        out.marks.push((out.values.len() as u32, line));
        for tok in t.split_whitespace() {
            let v: u64 = tok
                .parse()
                .map_err(|e: std::num::ParseIntError| GraphError::Parse {
                    line,
                    message: e.to_string(),
                })?;
            out.values.push(v);
        }
    }
    Ok((out, header_seen && expect_header))
}

/// Incremental CSR assembly for the `AdjacencyGraph` format: as soon as
/// the leading `n` and `m` tokens are known, every further token batch is
/// scattered straight into the preallocated offsets/targets arrays and
/// dropped, so transient memory stays a batch of tokens — never the whole
/// token stream.
enum AdjacencyBuilder {
    /// Before both `n` and `m` have appeared (at most a chunk or two of
    /// comments/header in practice).
    Buffering(Vec<TokenChunk>),
    Scattering(AdjacencyScatter),
}

struct AdjacencyScatter {
    /// Grown batch by batch toward length `n`, so a lying header cannot
    /// force a giant up-front allocation: memory tracks tokens actually
    /// read (plus the output the file legitimately describes).
    offsets: Vec<usize>,
    /// Grown batch by batch toward length `m`; see `offsets`.
    targets: Vec<VertexId>,
    n: usize,
    m: usize,
    /// `2 + n + m`, the token count a well-formed file must have.
    expected: usize,
    /// Tokens consumed so far, including the leading `n` and `m`.
    seen: usize,
}

impl AdjacencyBuilder {
    fn consume(&mut self, chunks: Vec<TokenChunk>, mode: ParMode) -> Result<(), GraphError> {
        match self {
            AdjacencyBuilder::Buffering(buffered) => {
                buffered.extend(chunks);
                let total: usize = buffered.iter().map(|c| c.values.len()).sum();
                if total < 2 {
                    return Ok(()); // n or m still missing; keep buffering
                }
                let mut head = buffered.iter().flat_map(|c| c.values.iter().copied());
                let n = head.next().expect("total >= 2") as usize;
                let m = head.next().expect("total >= 2") as usize;
                if n > VertexId::MAX as usize + 1 {
                    return Err(GraphError::Parse {
                        line: 1,
                        message: format!("vertex count {n} exceeds the vertex-id space"),
                    });
                }
                let expected =
                    n.checked_add(m)
                        .and_then(|nm| nm.checked_add(2))
                        .ok_or(GraphError::Parse {
                            line: 1,
                            message: format!("vertex/edge counts overflow: n = {n}, m = {m}"),
                        })?;
                let mut sc = AdjacencyScatter {
                    offsets: Vec::new(),
                    targets: Vec::new(),
                    n,
                    m,
                    expected,
                    seen: 0,
                };
                sc.scatter(buffered, mode)?;
                *self = AdjacencyBuilder::Scattering(sc);
                Ok(())
            }
            AdjacencyBuilder::Scattering(sc) => sc.scatter(&chunks, mode),
        }
    }

    fn finish(self, last_line: usize, directed: bool) -> Result<Graph, GraphError> {
        let mut sc = match self {
            AdjacencyBuilder::Buffering(_) => {
                return Err(GraphError::Parse {
                    line: last_line,
                    message: "truncated file".into(),
                });
            }
            AdjacencyBuilder::Scattering(sc) => sc,
        };
        if sc.seen != sc.expected {
            return Err(GraphError::Parse {
                line: last_line,
                message: format!("expected {} tokens, found {}", sc.expected, sc.seen),
            });
        }
        debug_assert_eq!(sc.offsets.len(), sc.n);
        debug_assert_eq!(sc.targets.len(), sc.m);
        sc.offsets.push(sc.m);
        let out = Adjacency::from_raw(sc.offsets, sc.targets, None)?;
        let into = out.transpose();
        Graph::from_parts(out, into, directed)
    }
}

impl AdjacencyScatter {
    /// Scatters a batch of token chunks at global token positions
    /// `seen..`, in parallel when the batch warrants it. Token `g` lands
    /// in `offsets[g - 2]` for `g < 2 + n`, else in `targets[g - 2 - n]`
    /// (range-checked); excess tokens error with their line.
    fn scatter(&mut self, chunks: &[TokenChunk], mode: ParMode) -> Result<(), GraphError> {
        let mut starts = Vec::with_capacity(chunks.len() + 1);
        starts.push(self.seen);
        for c in chunks {
            starts.push(starts.last().unwrap() + c.values.len());
        }
        let end = *starts.last().unwrap();
        let total = end - self.seen;
        // Grow the output arrays just far enough for this batch's tokens;
        // a well-formed file reaches exactly n and m by EOF.
        self.offsets.resize(self.n.min(end.saturating_sub(2)), 0);
        self.targets
            .resize(self.m.min(end.saturating_sub(2 + self.n)), 0);
        let (n, expected) = (self.n, self.expected);
        let scatter_one = |c: usize,
                           offsets: &mut dyn FnMut(usize, usize),
                           targets: &mut dyn FnMut(usize, VertexId)|
         -> Result<(), GraphError> {
            for (j, &val) in chunks[c].values.iter().enumerate() {
                let g = starts[c] + j;
                if g < 2 {
                    continue; // n and m, already consumed
                } else if g < 2 + n {
                    offsets(g - 2, val as usize);
                } else if g < expected {
                    if val >= n as u64 {
                        return Err(GraphError::VertexOutOfRangeAt {
                            line: chunks[c].line_of(j),
                            vertex: val,
                            num_vertices: n,
                        });
                    }
                    targets(g - 2 - n, val as VertexId);
                } else {
                    return Err(GraphError::Parse {
                        line: chunks[c].line_of(j),
                        message: format!("expected {expected} tokens, found more"),
                    });
                }
            }
            Ok(())
        };
        if mode.go_parallel(total) && chunks.len() > 1 {
            let off_shared = SharedSlice::new(&mut self.offsets);
            let tgt_shared = SharedSlice::new(&mut self.targets);
            let results: Vec<Result<(), GraphError>> = (0..chunks.len())
                .into_par_iter()
                .map(|c| {
                    // SAFETY: global token indices are disjoint across
                    // chunks, so every slot is written by one chunk.
                    scatter_one(
                        c,
                        &mut |i, v| unsafe { off_shared.write(i, v) },
                        &mut |i, v| unsafe { tgt_shared.write(i, v) },
                    )
                })
                .collect();
            for r in results {
                r?;
            }
        } else {
            let mut offsets = std::mem::take(&mut self.offsets);
            let mut targets = std::mem::take(&mut self.targets);
            let result = (0..chunks.len()).try_for_each(|c| {
                scatter_one(c, &mut |i, v| offsets[i] = v, &mut |i, v| targets[i] = v)
            });
            self.offsets = offsets;
            self.targets = targets;
            result?;
        }
        self.seen += total;
        Ok(())
    }
}

/// Streaming Ligra `AdjacencyGraph` reader: chunked input, batch-parallel
/// tokenization, incremental parallel scatter into the CSR arrays.
pub fn read_adjacency_graph_with<R: Read>(
    r: R,
    directed: bool,
    cfg: &StreamConfig,
) -> Result<Graph, GraphError> {
    let mut builder = AdjacencyBuilder::Buffering(Vec::new());
    let mut header_seen = false;
    let last_line = process_batches(r, cfg, |pending| {
        // The header must be found sequentially (it is almost always in
        // the first chunk); everything after it parses in parallel.
        let mut parsed: Vec<TokenChunk> = Vec::with_capacity(pending.len());
        let mut first_parallel = 0;
        while !header_seen && first_parallel < pending.len() {
            let (tc, consumed) = parse_token_chunk(&pending[first_parallel], true)?;
            header_seen = consumed || !tc.values.is_empty();
            // A chunk of pure comments neither finds the header nor
            // carries tokens; keep looking in the next chunk.
            parsed.push(tc);
            first_parallel += 1;
        }
        let rest = &pending[first_parallel..];
        let bytes: usize = rest.iter().map(|c| c.bytes.len()).sum();
        if rest.len() > 1 && cfg.mode.go_parallel(bytes) {
            let parts: Vec<Result<(TokenChunk, bool), GraphError>> = (0..rest.len())
                .into_par_iter()
                .map(|i| parse_token_chunk(&rest[i], false))
                .collect();
            for part in parts {
                parsed.push(part?.0);
            }
        } else {
            for chunk in rest {
                parsed.push(parse_token_chunk(chunk, false)?.0);
            }
        }
        builder.consume(parsed, cfg.mode)
    })?;
    if !header_seen {
        return Err(GraphError::Parse {
            line: last_line,
            message: "missing 'AdjacencyGraph' header".into(),
        });
    }
    builder.finish(last_line, directed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that hands out at most `cap` bytes per `read` call.
    struct Dribble<R> {
        inner: R,
        cap: usize,
    }

    impl<R: Read> Read for Dribble<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let end = buf.len().min(self.cap);
            self.inner.read(&mut buf[..end])
        }
    }

    #[test]
    fn chunker_emits_whole_lines() {
        let text = "alpha\nbeta\ngamma\ndelta\n";
        let chunker = LineChunker::new(text.as_bytes(), 16);
        let chunks: Vec<LineChunk> = chunker.map(|c| c.unwrap()).collect();
        assert!(chunks.len() > 1, "16-byte chunks must split this input");
        let glued: Vec<u8> = chunks.iter().flat_map(|c| c.bytes.clone()).collect();
        assert_eq!(glued, text.as_bytes());
        for c in &chunks {
            assert_eq!(*c.bytes.last().unwrap(), b'\n');
        }
        assert_eq!(chunks[0].first_line, 1);
        let mut expect = 1;
        for c in &chunks {
            assert_eq!(c.first_line, expect);
            expect += c.bytes.iter().filter(|&&b| b == b'\n').count();
        }
    }

    #[test]
    fn chunker_handles_missing_trailing_newline() {
        let chunks: Vec<LineChunk> = LineChunker::new("1 2\n3 4".as_bytes(), 16)
            .map(|c| c.unwrap())
            .collect();
        let glued: Vec<u8> = chunks.iter().flat_map(|c| c.bytes.clone()).collect();
        assert_eq!(glued, b"1 2\n3 4");
        assert_eq!(chunks.last().unwrap().lines, 2);
    }

    #[test]
    fn chunker_grows_past_oversized_lines() {
        // One line much longer than the chunk size must still come out whole.
        let mut text = String::from("0 1\n");
        text.push('#');
        text.push_str(&"x".repeat(4000));
        text.push('\n');
        text.push_str("2 3\n");
        let mut chunker = LineChunker::new(
            Dribble {
                inner: text.as_bytes(),
                cap: 7,
            },
            64,
        );
        let chunks: Vec<LineChunk> = chunker.by_ref().map(|c| c.unwrap()).collect();
        let glued: Vec<u8> = chunks.iter().flat_map(|c| c.bytes.clone()).collect();
        assert_eq!(glued, text.as_bytes());
        // Peak buffering stays proportional to chunk size + longest line.
        assert!(chunker.peak_buffered() <= 64 + 4002 + 4096);
    }

    #[test]
    fn chunker_bounded_memory_through_capped_reader() {
        // Many short lines, tiny chunks, reads capped at 11 bytes: the
        // chunker must never buffer more than ~one chunk.
        let text: String = (0..2000).map(|i| format!("{} {}\n", i, i + 1)).collect();
        let mut chunker = LineChunker::new(
            Dribble {
                inner: text.as_bytes(),
                cap: 11,
            },
            256,
        );
        let mut total = 0usize;
        let mut count = 0usize;
        for c in chunker.by_ref() {
            let c = c.unwrap();
            total += c.bytes.len();
            count += 1;
        }
        assert_eq!(total, text.len());
        assert!(count > 10, "expected a multi-chunk read, got {count}");
        let longest = text.lines().map(|l| l.len() + 1).max().unwrap();
        assert!(
            chunker.peak_buffered() <= 256 + longest,
            "peak {} exceeds chunk + line bound",
            chunker.peak_buffered()
        );
    }

    #[test]
    fn token_chunk_line_lookup() {
        let chunk = LineChunk {
            bytes: b"5\n6 7\n8\n".to_vec(),
            first_line: 10,
            lines: 3,
        };
        let (tc, _) = parse_token_chunk(&chunk, false).unwrap();
        assert_eq!(tc.values, vec![5, 6, 7, 8]);
        assert_eq!(tc.line_of(0), 10);
        assert_eq!(tc.line_of(1), 11);
        assert_eq!(tc.line_of(2), 11);
        assert_eq!(tc.line_of(3), 12);
    }
}
