//! Graph I/O: plain edge lists, the Ligra `AdjacencyGraph` text format,
//! and a versioned binary CSR format.
//!
//! Three on-disk formats are supported, all routed through the same
//! streaming core ([`stream`]) so no reader ever materializes the whole
//! input as one `String`:
//!
//! * **Edge list** (`el`) — whitespace `src dst` pairs, one per line;
//! * **Ligra `AdjacencyGraph`** (`adj`) — the text format used by all
//!   three frameworks in the paper's artifact:
//!
//!   ```text
//!   AdjacencyGraph
//!   <n>
//!   <m>
//!   <offset 0> ... <offset n-1>
//!   <edge 0> ... <edge m-1>
//!   ```
//!
//! * **Binary CSR** (`bin`, conventionally `.vgr`) — magic + header +
//!   offsets + targets for instant reloads; see [`binary`] for the layout.
//!
//! Text readers accept both `#` and `%` (Matrix Market style) comment
//! lines, tolerate CRLF line endings, and report 1-based line numbers on
//! every error. [`load_graph`] sniffs the format from the first bytes of
//! the file when none is forced.

pub mod binary;
pub mod stream;

use crate::graph::Graph;
use crate::types::GraphError;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

pub use binary::{
    mmap_binary_graph, read_binary_graph, write_binary_graph, write_binary_graph_versioned,
    BINARY_MAGIC, BINARY_VERSION, BINARY_VERSION_V1, BINARY_VERSION_V3,
};
pub use stream::{read_adjacency_graph_with, read_edge_list_with, LineChunker, StreamConfig};

/// How [`load_graph_with`] materializes the sections of a binary file.
///
/// Text formats always stream; the mode only changes how `.vgr` files
/// reach memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LoadMode {
    /// Stream through bounded buffers into owned arrays (the default).
    #[default]
    Buffered,
    /// Memory-map binary files and borrow their sections zero-copy when
    /// the platform and layout allow (see
    /// [`binary::mmap_binary_graph`]); unaligned v1 sections and
    /// non-64-bit/little-endian hosts fall back to a copy.
    Mmap,
}

/// Whether a trimmed text line is a comment. Both `#` (edge-list
/// convention) and `%` (Matrix Market convention) introduce comments, in
/// every text format.
#[inline]
pub fn is_comment(trimmed: &str) -> bool {
    trimmed.starts_with('#') || trimmed.starts_with('%')
}

/// The supported on-disk graph formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Format {
    /// Whitespace `src dst` edge list.
    EdgeList,
    /// Ligra `AdjacencyGraph` text format.
    AdjacencyGraph,
    /// Versioned binary CSR (`.vgr`).
    Binary,
}

impl Format {
    /// Every format, in sniffing priority order.
    pub const ALL: [Format; 3] = [Format::Binary, Format::AdjacencyGraph, Format::EdgeList];

    /// Short CLI name (`el`, `adj`, `bin`).
    pub fn name(self) -> &'static str {
        match self {
            Format::EdgeList => "el",
            Format::AdjacencyGraph => "adj",
            Format::Binary => "bin",
        }
    }

    /// Parses a CLI name; accepts a few aliases.
    pub fn from_name(name: &str) -> Option<Format> {
        match name {
            "el" | "edgelist" | "edge-list" => Some(Format::EdgeList),
            "adj" | "adjacency" | "ligra" => Some(Format::AdjacencyGraph),
            "bin" | "binary" | "vgr" => Some(Format::Binary),
            _ => None,
        }
    }

    /// The format conventionally implied by a file extension, if any
    /// (`.vgr` → binary, `.adj` → AdjacencyGraph, `.el`/`.txt` → edge
    /// list).
    pub fn from_extension(path: &Path) -> Option<Format> {
        match path.extension()?.to_str()? {
            "vgr" | "bin" => Some(Format::Binary),
            "adj" => Some(Format::AdjacencyGraph),
            "el" | "txt" | "edges" => Some(Format::EdgeList),
            _ => None,
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Format::EdgeList => "edge list",
            Format::AdjacencyGraph => "AdjacencyGraph",
            Format::Binary => "binary CSR",
        })
    }
}

/// Bytes examined by [`sniff_format`] / auto-detection.
const SNIFF_BYTES: usize = 64 * 1024;

/// Best-effort format detection from the first bytes of a file: the
/// binary magic wins, then a leading `AdjacencyGraph` header (after
/// comments), otherwise an edge list is assumed.
pub fn sniff_format(prefix: &[u8]) -> Format {
    if prefix.starts_with(&BINARY_MAGIC) {
        return Format::Binary;
    }
    // Only complete lines are conclusive; a prefix cut mid-line could
    // truncate the header token.
    let upto = prefix
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(prefix.len(), |p| p + 1);
    let text = String::from_utf8_lossy(&prefix[..upto]);
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || is_comment(t) {
            continue;
        }
        return if t == "AdjacencyGraph" {
            Format::AdjacencyGraph
        } else {
            Format::EdgeList
        };
    }
    Format::EdgeList
}

/// Writes a graph as a whitespace edge list (`src dst` per line; `#` and
/// `%` comments allowed when reading back). The leading
/// `# vertices <n> ...` comment doubles as a vertex-count hint the
/// reader honors, so trailing isolated vertices survive the round-trip.
pub fn write_edge_list<W: Write>(g: &Graph, w: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "# vertices {} edges {} directed {}",
        g.num_vertices(),
        g.num_edges(),
        g.is_directed()
    )?;
    for u in g.vertices() {
        for &v in g.out_neighbors(u) {
            writeln!(w, "{u} {v}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a whitespace edge list. `num_vertices` is inferred as
/// `max endpoint + 1` unless a larger value is supplied. Streams the
/// input in line-aligned chunks and parses them in parallel when rayon
/// has threads to spare; the result is bit-identical to a sequential
/// parse.
pub fn read_edge_list<R: Read>(
    r: R,
    directed: bool,
    min_vertices: Option<usize>,
) -> Result<Graph, GraphError> {
    stream::read_edge_list_with(r, directed, min_vertices, &StreamConfig::default())
}

/// Writes the Ligra `AdjacencyGraph` format.
pub fn write_adjacency_graph<W: Write>(g: &Graph, w: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "AdjacencyGraph")?;
    writeln!(w, "{}", g.num_vertices())?;
    writeln!(w, "{}", g.num_edges())?;
    for v in g.vertices() {
        writeln!(w, "{}", g.csr().edge_start(v))?;
    }
    for &t in g.csr().targets() {
        writeln!(w, "{t}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the Ligra `AdjacencyGraph` format through the streaming core.
pub fn read_adjacency_graph<R: Read>(r: R, directed: bool) -> Result<Graph, GraphError> {
    stream::read_adjacency_graph_with(r, directed, &StreamConfig::default())
}

/// Writes `g` to `w` in the given format.
pub fn write_graph<W: Write>(g: &Graph, w: W, format: Format) -> Result<(), GraphError> {
    match format {
        Format::EdgeList => write_edge_list(g, w),
        Format::AdjacencyGraph => write_adjacency_graph(g, w),
        Format::Binary => write_binary_graph(g, w),
    }
}

/// Reads a graph from `r`. With `format == None` the format is sniffed
/// from the first bytes (see [`sniff_format`]); the detected format is
/// returned alongside the graph. For the binary format, directedness is
/// taken from the stored header and `directed` is ignored.
pub fn read_graph<R: Read>(
    mut r: R,
    directed: bool,
    format: Option<Format>,
    cfg: &StreamConfig,
) -> Result<(Graph, Format), GraphError> {
    if let Some(f) = format {
        return read_known(r, directed, f, cfg).map(|g| (g, f));
    }
    let mut prefix = Vec::with_capacity(SNIFF_BYTES);
    r.by_ref()
        .take(SNIFF_BYTES as u64)
        .read_to_end(&mut prefix)?;
    let f = sniff_format(&prefix);
    let chained = std::io::Cursor::new(prefix).chain(r);
    read_known(chained, directed, f, cfg).map(|g| (g, f))
}

fn read_known<R: Read>(
    r: R,
    directed: bool,
    format: Format,
    cfg: &StreamConfig,
) -> Result<Graph, GraphError> {
    match format {
        Format::EdgeList => stream::read_edge_list_with(r, directed, None, cfg),
        Format::AdjacencyGraph => stream::read_adjacency_graph_with(r, directed, cfg),
        Format::Binary => read_binary_graph(r),
    }
}

/// Reads a graph file, sniffing the format when `format` is `None`.
pub fn load_graph(
    path: impl AsRef<Path>,
    directed: bool,
    format: Option<Format>,
) -> Result<(Graph, Format), GraphError> {
    load_graph_with(path, directed, format, LoadMode::Buffered)
}

/// As [`load_graph`], with an explicit [`LoadMode`]. With
/// [`LoadMode::Mmap`], binary files are memory-mapped and their sections
/// used zero-copy where possible; text formats stream as usual.
pub fn load_graph_with(
    path: impl AsRef<Path>,
    directed: bool,
    format: Option<Format>,
    mode: LoadMode,
) -> Result<(Graph, Format), GraphError> {
    let path = path.as_ref();
    if mode == LoadMode::Mmap {
        let f = match format {
            Some(f) => f,
            None => {
                // Sniff from a bounded prefix, exactly like the streaming
                // path, then reopen through the chosen loader.
                let mut prefix = Vec::with_capacity(SNIFF_BYTES);
                std::fs::File::open(path)?
                    .take(SNIFF_BYTES as u64)
                    .read_to_end(&mut prefix)?;
                sniff_format(&prefix)
            }
        };
        if f == Format::Binary {
            return binary::mmap_binary_graph(path).map(|g| (g, f));
        }
        return read_graph(
            std::fs::File::open(path)?,
            directed,
            Some(f),
            &StreamConfig::default(),
        );
    }
    read_graph(
        std::fs::File::open(path)?,
        directed,
        format,
        &StreamConfig::default(),
    )
}

/// Writes a graph file in the given format.
pub fn save_graph(g: &Graph, path: impl AsRef<Path>, format: Format) -> Result<(), GraphError> {
    write_graph(g, std::fs::File::create(path)?, format)
}

/// Convenience wrapper: writes an edge list to a file path.
pub fn save_edge_list(g: &Graph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    save_graph(g, path, Format::EdgeList)
}

/// Convenience wrapper: reads an edge list from a file path.
pub fn load_edge_list(path: impl AsRef<Path>, directed: bool) -> Result<Graph, GraphError> {
    read_edge_list(std::fs::File::open(path)?, directed, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (3, 4), (4, 0)], true)
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..], true, None).unwrap();
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.csr().targets(), h.csr().targets());
        assert_eq!(g.csr().offsets(), h.csr().offsets());
    }

    #[test]
    fn edge_list_skips_both_comment_styles() {
        let text = "# hello\n% pct comment\n0 1\n\n1 2\n";
        let g = read_edge_list(text.as_bytes(), true, None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn adjacency_graph_skips_both_comment_styles() {
        let text = "% leading MM comment\nAdjacencyGraph\n# n\n2\n% m\n1\n0\n1\n1\n";
        let g = read_adjacency_graph(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.csr().neighbors(0), &[1]);
    }

    #[test]
    fn edge_list_reports_parse_errors_with_line() {
        let text = "0 1\nbroken\n";
        let err = read_edge_list(text.as_bytes(), true, None).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn edge_list_out_of_range_carries_line() {
        let text = "0 1\n1 2\n3 99999999999\n";
        let err = read_edge_list(text.as_bytes(), true, None).unwrap_err();
        match err {
            GraphError::VertexOutOfRangeAt { line, vertex, .. } => {
                assert_eq!(line, 3);
                assert_eq!(vertex, 99999999999);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn edge_list_min_vertices_pads() {
        let g = read_edge_list("0 1\n".as_bytes(), true, Some(10)).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn edge_list_header_hint_preserves_isolated_vertices() {
        let g = read_edge_list(
            "# vertices 7 edges 1 directed true\n0 1\n".as_bytes(),
            true,
            None,
        )
        .unwrap();
        assert_eq!(g.num_vertices(), 7);
        // An absurd hint (beyond the vertex-id space) is ignored instead
        // of trusted into a huge allocation.
        let g = read_edge_list("# vertices 99999999999999\n0 1\n".as_bytes(), true, None).unwrap();
        assert_eq!(g.num_vertices(), 2);
    }

    #[test]
    fn adjacency_graph_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_adjacency_graph(&g, &mut buf).unwrap();
        let h = read_adjacency_graph(&buf[..], true).unwrap();
        assert_eq!(g.csr().offsets(), h.csr().offsets());
        assert_eq!(g.csr().targets(), h.csr().targets());
    }

    #[test]
    fn adjacency_graph_rejects_wrong_header() {
        let err = read_adjacency_graph("WeightedThing\n1\n0\n0\n".as_bytes(), true).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn adjacency_graph_token_mismatch_reports_last_line() {
        // Header + n=2 m=1 + one offset: 4 tokens instead of 5, over 4
        // content lines.
        let err = read_adjacency_graph("AdjacencyGraph\n2\n1\n0\n".as_bytes(), true).unwrap_err();
        match err {
            GraphError::Parse { line, ref message } => {
                assert_eq!(line, 4, "{message}");
                assert!(message.contains("expected 5 tokens"), "{message}");
            }
            ref other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn adjacency_graph_truncation_reports_last_line() {
        let err = read_adjacency_graph("AdjacencyGraph\n7\n".as_bytes(), true).unwrap_err();
        match err {
            GraphError::Parse { line, ref message } => {
                assert_eq!(line, 2, "{message}");
                assert!(message.contains("truncated"), "{message}");
            }
            ref other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn adjacency_graph_target_out_of_range_carries_line() {
        // n=2, m=1, offsets 0 1, target 9 (out of range) on the last line.
        let err =
            read_adjacency_graph("AdjacencyGraph\n2\n1\n0\n1\n9\n".as_bytes(), true).unwrap_err();
        match err {
            GraphError::VertexOutOfRangeAt { line, vertex, .. } => {
                assert_eq!(line, 6);
                assert_eq!(vertex, 9);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn crlf_line_endings_parse() {
        let g = read_edge_list("0 1\r\n1 2\r\n".as_bytes(), true, None).unwrap();
        assert_eq!(g.num_edges(), 2);
        let h = read_adjacency_graph(
            "AdjacencyGraph\r\n2\r\n1\r\n0\r\n1\r\n1\r\n".as_bytes(),
            true,
        )
        .unwrap();
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn sniffing_recognizes_all_three_formats() {
        let g = sample();
        let mut el = Vec::new();
        write_edge_list(&g, &mut el).unwrap();
        let mut adj = Vec::new();
        write_adjacency_graph(&g, &mut adj).unwrap();
        let mut bin = Vec::new();
        write_binary_graph(&g, &mut bin).unwrap();
        assert_eq!(sniff_format(&el), Format::EdgeList);
        assert_eq!(sniff_format(&adj), Format::AdjacencyGraph);
        assert_eq!(sniff_format(&bin), Format::Binary);
        for (bytes, want) in [
            (el, Format::EdgeList),
            (adj, Format::AdjacencyGraph),
            (bin, Format::Binary),
        ] {
            let (h, got) = read_graph(&bytes[..], true, None, &StreamConfig::default()).unwrap();
            assert_eq!(got, want);
            assert_eq!(h.csr().offsets(), g.csr().offsets());
            assert_eq!(h.csr().targets(), g.csr().targets());
        }
    }

    #[test]
    fn format_names_roundtrip() {
        for f in Format::ALL {
            assert_eq!(Format::from_name(f.name()), Some(f));
        }
        assert_eq!(Format::from_name("nope"), None);
        assert_eq!(
            Format::from_extension(Path::new("x/y.vgr")),
            Some(Format::Binary)
        );
        assert_eq!(Format::from_extension(Path::new("x/y")), None);
    }

    #[test]
    fn file_roundtrip_all_formats() {
        let g = sample();
        let dir = std::env::temp_dir().join("vebo_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        for f in Format::ALL {
            let path = dir.join(format!("g.{}", f.name()));
            save_graph(&g, &path, f).unwrap();
            // Explicit format.
            let (h, _) = load_graph(&path, true, Some(f)).unwrap();
            assert_eq!(g.csr().targets(), h.csr().targets(), "{f}");
            // Sniffed format.
            let (h, sniffed) = load_graph(&path, true, None).unwrap();
            assert_eq!(sniffed, f);
            assert_eq!(g.csr().targets(), h.csr().targets(), "{f}");
            std::fs::remove_file(&path).ok();
        }
    }
}
