//! # vebo-serve-net
//!
//! The network serving frontend for the VEBO reproduction: a
//! hand-rolled non-blocking TCP server (raw `epoll(7)` via minimal
//! `extern "C"` declarations — the workspace vendors no async runtime
//! or libc crate) speaking a length-prefixed line protocol whose
//! request grammar derives from the [`vebo::REQUEST_SPECS`] roster, in
//! front of the shared `ServeEngine` from `vebo-bench`.
//!
//! Three layers, each independently testable:
//!
//! - [`protocol`] — the wire codec: 4-byte little-endian length prefix
//!   plus a UTF-8 request/reply line, layered over the shared byte
//!   framing in [`vebo_net::frame`]. Pure state machine, no sockets.
//! - [`batch`] — the adaptive micro-batching policy: batch-size target
//!   doubles while the queue keeps batches full, halves when flushes
//!   hit the idle deadline. Pure state, no clocks.
//! - [`server`] *(Linux)* — the epoll readiness loop, admission
//!   control (bounded in-flight count and per-connection outbox, BUSY
//!   beyond either), and the dispatcher that coalesces query runs into
//!   `ServeEngine::run_coalesced`.
//!
//! Binaries: `vebo-served` (the daemon; `--listen`, `--max-inflight`,
//! `--batch-window-us`, SIGINT drains) and `vebo-client` (an open-loop
//! load generator that prints the same digest lines as an in-process
//! `vebo-serve` run, so CI can `diff` the two).
//!
//! The headline property, enforced by `tests/loopback.rs` and the CI
//! network leg: digests served over TCP — batching, admission control
//! and all — are **bit-identical** to an in-process
//! `run_batch(concurrency = 1)` on the same engine configuration.

#![warn(missing_docs)]

pub mod batch;
pub mod client;
#[cfg(target_os = "linux")]
pub use vebo_net::epoll;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod server;

pub use batch::AdaptiveBatcher;
pub use client::NetClient;
pub use protocol::{
    decode_request, encode_frame, encode_request, FrameDecoder, FrameError, Reply, HEADER_LEN,
    MAX_FRAME,
};
#[cfg(target_os = "linux")]
pub use server::{Server, ServerConfig, ServerStats};
