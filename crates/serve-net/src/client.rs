//! Blocking client for the serving protocol, shared by the
//! `vebo-client` load generator and the loopback conformance tests.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use vebo_bench::serve::Request;

use crate::protocol::{encode_request, FrameDecoder, Reply};

/// One blocking connection speaking the length-prefixed protocol.
pub struct NetClient {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl NetClient {
    /// Connects to `addr`, retrying refused connections until `patience`
    /// elapses — lets a client race a daemon that is still binding.
    pub fn connect(addr: &str, patience: Duration) -> io::Result<NetClient> {
        let begin = Instant::now();
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
                    return Ok(NetClient {
                        stream,
                        decoder: FrameDecoder::new(),
                    });
                }
                Err(e) if begin.elapsed() < patience => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one request frame (does not wait for the reply — pipeline
    /// freely, replies come back in request order).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        let mut wire = Vec::new();
        encode_request(req, &mut wire);
        self.stream.write_all(&wire)
    }

    /// Sends an arbitrary payload frame (protocol tests).
    pub fn send_payload(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut wire = Vec::new();
        crate::protocol::encode_frame(payload, &mut wire);
        self.stream.write_all(&wire)
    }

    /// Blocks for the next reply frame.
    pub fn recv(&mut self) -> io::Result<Reply> {
        let mut buf = [0u8; 4096];
        loop {
            match self.decoder.next_frame() {
                Ok(Some(line)) => {
                    return Reply::parse(&line)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
                }
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.decoder.push(&buf[..n]);
        }
    }

    /// Half-closes the write side so the server sees EOF after the last
    /// request (it still flushes every admitted reply first).
    pub fn finish_sending(&self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// A second handle to the same connection for a dedicated sender
    /// thread (the open-loop load generator sends and receives
    /// concurrently; replies still come back in request order).
    pub fn writer(&self) -> io::Result<TcpStream> {
        self.stream.try_clone()
    }
}
