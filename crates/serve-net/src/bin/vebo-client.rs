//! `vebo-client` — open-loop load generator for `vebo-served`.
//!
//! Sends a request script (or a generated workload) over one pipelined
//! connection at a target request rate, and prints **exactly** the
//! digest lines an in-process `vebo-serve` run prints for the same
//! script:
//!
//! ```text
//! req    0 pr    digest=9be1f1e6b2c40f1a
//! ...
//! batch digest=8b6c0e8b1f9d2a3c
//! ```
//!
//! so `diff <(vebo-serve --requests s.txt ...) <(vebo-client --requests
//! s.txt ...)` is the network-vs-in-process conformance check CI runs.
//! BUSY rejections print as `req .. busy` lines and are excluded from
//! the combined digest.
//!
//! Open-loop means send times are scheduled (`t0 + i/rps`), never
//! gated on responses — a slow server cannot slow the offered load,
//! it can only answer BUSY. `--rps 0` (default) sends back-to-back.

use std::io::Write;
use std::net::Shutdown;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use vebo_bench::serve::{digest_u64s, generate_requests, parse_script, Request};
use vebo_serve_net::protocol::{encode_request, Reply};
use vebo_serve_net::NetClient;

struct ClientArgs {
    connect: String,
    rps: f64,
    requests_file: Option<String>,
    gen_count: usize,
    gen_seed: u64,
    patience: Duration,
}

fn usage() -> ! {
    let grammar = vebo::request_grammar();
    eprintln!(
        "vebo-client — open-loop load generator for vebo-served\n\n\
         Options:\n  \
         --connect <addr>    server address (default 127.0.0.1:7171)\n  \
         --rps <r>           target request rate; 0 = unpaced (default 0)\n  \
         --requests <file>   replay a script, one request per line:\n                      \
         {grammar}\n  \
         --gen <n>           generate a mixed workload of n requests (default 32)\n  \
         --seed <s>          workload generator seed (default 1)\n  \
         --patience <secs>   connect retry window (default 10)\n\n\
         Prints the same `req .. digest=..` / `batch digest=..` lines as\n\
         an in-process vebo-serve run of the same script."
    );
    std::process::exit(2)
}

fn parse_args() -> ClientArgs {
    let mut out = ClientArgs {
        connect: "127.0.0.1:7171".to_string(),
        rps: 0.0,
        requests_file: None,
        gen_count: 32,
        gen_seed: 1,
        patience: Duration::from_secs(10),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--connect" => out.connect = next("--connect"),
            "--rps" => out.rps = next("--rps").parse().unwrap_or_else(|_| usage()),
            "--requests" => out.requests_file = Some(next("--requests")),
            "--gen" => out.gen_count = next("--gen").parse().unwrap_or_else(|_| usage()),
            "--seed" => out.gen_seed = next("--seed").parse().unwrap_or_else(|_| usage()),
            "--patience" => {
                out.patience =
                    Duration::from_secs(next("--patience").parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            _ => {
                eprintln!("unknown option '{arg}'");
                usage()
            }
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let requests: Vec<Request> = match &args.requests_file {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            parse_script(&text).unwrap_or_else(|e| {
                eprintln!("bad request script: {e}");
                std::process::exit(2);
            })
        }
        None => generate_requests(args.gen_count, args.gen_seed),
    };

    let mut client = NetClient::connect(&args.connect, args.patience).unwrap_or_else(|e| {
        eprintln!("cannot connect to {}: {e}", args.connect);
        std::process::exit(1);
    });
    let writer = client.writer().unwrap_or_else(|e| {
        eprintln!("cannot clone connection: {e}");
        std::process::exit(1);
    });

    let t0 = Instant::now();
    let rps = args.rps;
    // The sender publishes how many requests actually hit the wire, and
    // the receiver can tell it to stop early: when the server closes the
    // connection mid-pipeline the client must not keep pacing doomed
    // sends (or, worse, wait on replies that can never arrive).
    let sent = AtomicUsize::new(0);
    let dead = AtomicBool::new(false);
    let (oks, busy, errs, lost) = std::thread::scope(|scope| {
        let send_reqs = &requests;
        let (sent, dead) = (&sent, &dead);
        scope.spawn(move || {
            for (i, req) in send_reqs.iter().enumerate() {
                if rps > 0.0 {
                    let due = t0 + Duration::from_secs_f64(i as f64 / rps);
                    while Instant::now() < due {
                        if dead.load(Ordering::Acquire) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(5).min(due - Instant::now()));
                    }
                }
                if dead.load(Ordering::Acquire) {
                    return;
                }
                let mut wire = Vec::new();
                encode_request(req, &mut wire);
                if (&writer).write_all(&wire).is_err() {
                    // EPIPE/ECONNRESET: requests [sent..] never left.
                    return;
                }
                sent.store(i + 1, Ordering::Release);
            }
            let _ = writer.shutdown(Shutdown::Write);
        });

        let mut digests: Vec<u64> = Vec::new();
        let (mut busy, mut errs) = (0u64, 0u64);
        let mut lost = None;
        for (i, req) in requests.iter().enumerate() {
            match client.recv() {
                Ok(Reply::Ok { digest, .. }) => {
                    println!("req {i:>4} {:<5} digest={digest:016x}", req.code());
                    digests.push(digest);
                }
                Ok(Reply::Busy) => {
                    println!("req {i:>4} {:<5} busy", req.code());
                    busy += 1;
                }
                Ok(Reply::Err(msg)) => {
                    println!("req {i:>4} {:<5} err: {msg}", req.code());
                    errs += 1;
                }
                Err(e) => {
                    dead.store(true, Ordering::Release);
                    let _ = client.finish_sending();
                    lost = Some((i, e));
                    break;
                }
            }
        }
        (digests, busy, errs, lost)
    });

    if let Some((acked, e)) = lost {
        // The server disconnected mid-pipeline (EOF or reset). Account
        // for every request: acknowledged, sent-but-unanswered, unsent.
        let sent = sent.load(Ordering::Acquire);
        let outstanding = sent.saturating_sub(acked);
        eprintln!("connection lost after {acked} replies: {e}");
        eprintln!(
            "{outstanding} unacknowledged request(s) were sent but never answered, \
             {} never sent:",
            requests.len() - sent,
        );
        for (i, req) in requests.iter().enumerate().take(sent).skip(acked).take(10) {
            eprintln!("  req {i:>4} {:<5} unacknowledged", req.code());
        }
        if outstanding > 10 {
            eprintln!("  ... and {} more", outstanding - 10);
        }
        std::process::exit(1);
    }

    println!("batch digest={:016x}", digest_u64s(oks.iter().copied()));
    let wall = t0.elapsed().as_secs_f64();
    eprintln!(
        "client: ok={} busy={busy} err={errs} wall={wall:.3}s achieved {:.0} req/s",
        oks.len(),
        requests.len() as f64 / wall.max(1e-9),
    );
}
