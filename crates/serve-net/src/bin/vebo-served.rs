//! `vebo-served` — the network serving daemon: the `vebo-serve` engine
//! behind the epoll TCP frontend.
//!
//! ```text
//! # serve an rmat graph on the sharded backend:
//! cargo run --release -p vebo-serve-net --bin vebo-served -- \
//!     --listen 127.0.0.1:7171 --quick --executor sharded --shards 4
//!
//! # tiny admission bound, for watching BUSY under load:
//! cargo run --release -p vebo-serve-net --bin vebo-served -- \
//!     --listen 127.0.0.1:7171 --quick --max-inflight 1
//! ```
//!
//! The first SIGINT stops accepting connections, drains every admitted
//! request, flushes the responses, prints the final metrics report to
//! stderr, and exits 0. A second SIGINT kills the process immediately.

#[cfg(target_os = "linux")]
fn main() {
    linux::main()
}

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("vebo-served requires Linux (the server is built on epoll)");
    std::process::exit(2);
}

#[cfg(target_os = "linux")]
mod linux {
    use std::sync::Arc;
    use std::time::Duration;

    use vebo_bench::serve::{
        metrics_summary, ServeEngine, DEFAULT_COMPACT_EVERY, DEFAULT_DRIFT_THRESHOLD,
    };
    use vebo_bench::{shutdown, HarnessArgs};
    use vebo_engine::SystemProfile;
    use vebo_graph::Dataset;
    use vebo_partition::EdgeOrder;
    use vebo_serve_net::{Server, ServerConfig};

    struct ServedArgs {
        harness: HarnessArgs,
        profile: SystemProfile,
        profile_name: String,
        listen: String,
        config: ServerConfig,
        ppr_rounds: usize,
        compact_every: usize,
        compact_blocking: bool,
        log_cap: Option<usize>,
        drift: f64,
    }

    fn usage() -> ! {
        let grammar = vebo::request_grammar();
        eprintln!(
            "vebo-served — network serving daemon over a mutable graph\n\n\
             Wire protocol: 4-byte LE length prefix + UTF-8 line per frame.\n\
             Request lines (same grammar as vebo-serve scripts):\n  {grammar}\n\
             Replies: `ok <code> <16-hex-digest>` | `busy` | `err <msg>`\n\n\
             Options (plus every vebo-bench harness option):\n  \
             --listen <addr>        bind address (default 127.0.0.1:7171)\n  \
             --max-inflight <n>     admission bound; BUSY beyond it (default 64)\n  \
             --batch-window-us <u>  micro-batch hold window (default 200)\n  \
             --max-batch <n>        largest coalesced batch (default 32)\n  \
             --profile <name>       ligra | polymer | graphgrind (default polymer)\n  \
             --ppr-rounds <k>       push rounds per `pr` request (default 10)\n  \
             --compact-every <n>    merge the delta log every n mutations (default {DEFAULT_COMPACT_EVERY})\n  \
             --compact-mode <m>     async | wait (default async): whether the mutation\n                         \
             that trips --compact-every returns immediately while\n                         \
             the compaction thread merges, or waits for the cycle\n  \
             --log-cap <n>          bound the delta log at n buffered mutations;\n                         \
             mutations beyond it answer `busy` until compaction\n                         \
             drains the log (default unbounded)\n  \
             --drift <t>            reorder drift threshold (default {DEFAULT_DRIFT_THRESHOLD})\n\n\
             SIGINT drains admitted requests and prints the metrics report."
        );
        std::process::exit(2)
    }

    fn parse_args() -> ServedArgs {
        let mut out = ServedArgs {
            harness: HarnessArgs::default(),
            profile: SystemProfile::polymer_like(),
            profile_name: "polymer".to_string(),
            listen: "127.0.0.1:7171".to_string(),
            config: ServerConfig::default(),
            ppr_rounds: 10,
            compact_every: DEFAULT_COMPACT_EVERY,
            compact_blocking: false,
            log_cap: None,
            drift: DEFAULT_DRIFT_THRESHOLD,
        };
        let mut rest: Vec<String> = Vec::new();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            let mut next = |flag: &str| -> String {
                it.next().unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    usage()
                })
            };
            match arg.as_str() {
                "--listen" => out.listen = next("--listen"),
                "--max-inflight" => {
                    out.config.max_inflight =
                        next("--max-inflight").parse().unwrap_or_else(|_| usage());
                    if out.config.max_inflight == 0 {
                        eprintln!("--max-inflight must be at least 1");
                        usage()
                    }
                }
                "--batch-window-us" => {
                    let us: u64 = next("--batch-window-us")
                        .parse()
                        .unwrap_or_else(|_| usage());
                    out.config.batch_window = Duration::from_micros(us);
                }
                "--max-batch" => {
                    out.config.max_batch = next("--max-batch").parse().unwrap_or_else(|_| usage())
                }
                "--profile" => {
                    let v = next("--profile");
                    out.profile = match v.as_str() {
                        "ligra" => SystemProfile::ligra_like(),
                        "polymer" => SystemProfile::polymer_like(),
                        "graphgrind" => SystemProfile::graphgrind_like(EdgeOrder::Csr),
                        _ => {
                            eprintln!("unknown profile '{v}'");
                            usage()
                        }
                    };
                    out.profile_name = v;
                }
                "--ppr-rounds" => {
                    out.ppr_rounds = next("--ppr-rounds").parse().unwrap_or_else(|_| usage())
                }
                "--compact-every" => {
                    out.compact_every = next("--compact-every").parse().unwrap_or_else(|_| usage());
                    if out.compact_every == 0 {
                        eprintln!("--compact-every must be at least 1");
                        usage()
                    }
                }
                "--compact-mode" => {
                    out.compact_blocking = match next("--compact-mode").as_str() {
                        "wait" => true,
                        "async" => false,
                        other => {
                            eprintln!("unknown compact mode '{other}' (async | wait)");
                            usage()
                        }
                    }
                }
                "--log-cap" => {
                    let cap: usize = next("--log-cap").parse().unwrap_or_else(|_| usage());
                    if cap == 0 {
                        eprintln!("--log-cap must be at least 1");
                        usage()
                    }
                    out.log_cap = Some(cap);
                }
                "--drift" => out.drift = next("--drift").parse().unwrap_or_else(|_| usage()),
                "--help" | "-h" => usage(),
                other => rest.push(other.to_string()),
            }
        }
        out.harness = HarnessArgs::parse_from("vebo-served", "network serving daemon", rest);
        out
    }

    pub fn main() {
        let args = parse_args();
        let dataset = args.harness.dataset.unwrap_or(Dataset::LiveJournalLike);
        let scale = args.harness.scale_or(0.2);
        let g = args.harness.build_dataset(dataset, scale);
        let n = g.num_vertices();
        let m = g.num_edges();
        let exec = args.harness.executor(args.profile);
        let exec_mode = exec.mode();

        let mut engine = ServeEngine::new(g, args.profile, exec);
        engine.set_ppr_rounds(args.ppr_rounds);
        engine.configure_compaction(args.compact_every, args.drift);
        // The daemon defaults to async compaction: the mutation lane's
        // latency stays independent of graph size, and the bounded log
        // (when configured) answers `busy` if the compactor falls behind.
        engine.set_compaction_blocking(args.compact_blocking);
        if let Some(cap) = args.log_cap {
            engine.set_log_capacity(cap);
        }
        let engine = Arc::new(engine);

        let server = Server::bind(&args.listen, args.config.clone()).unwrap_or_else(|e| {
            eprintln!("cannot bind {}: {e}", args.listen);
            std::process::exit(1);
        });
        shutdown::install();
        eprintln!(
            "vebo-served listening on {} | {} (n = {n}, m = {m}) | profile {} | executor {:?} | \
             max-inflight {} | batch-window {:?} | max-batch {}",
            server
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_default(),
            dataset.name(),
            args.profile_name,
            exec_mode,
            args.config.max_inflight,
            args.config.batch_window,
            args.config.max_batch,
        );

        let stats = server
            .run(Arc::clone(&engine), shutdown::flag())
            .unwrap_or_else(|e| {
                eprintln!("server error: {e}");
                std::process::exit(1);
            });

        // Let in-flight and signalled compaction cycles finish before
        // the final report, so the counters describe a settled engine.
        engine.drain_compaction();
        eprintln!(
            "\ndrained: connections={} requests={} busy={} protocol-errors={} fair-yields={}",
            stats.connections, stats.requests, stats.busy, stats.protocol_errors, stats.fair_yields,
        );
        eprint!("{}", metrics_summary(&engine.metrics()));
        eprintln!("pending={}", engine.dynamic().pending_len());
    }
}
