//! Adaptive micro-batching policy for the dispatcher.
//!
//! The dispatcher coalesces runs of **query** requests (same pinned
//! epoch — mutations break a run, see `server.rs`) into one
//! `ServeEngine::run_coalesced` call. How many to wait for is a classic
//! latency/throughput dial, so the target batch size adapts to load:
//!
//! - a flush that **fills** the current target means the queue is
//!   keeping up with us → double the target (up to `max_batch`), buying
//!   more dedup per execution;
//! - a flush forced by the **deadline** (`window`) with a short batch
//!   means the queue is idle → halve the target (down to 1), so a lone
//!   request never waits out the window behind an inflated target.
//!
//! The policy is pure state (no clocks, no channels) so its dynamics
//! are unit-testable; the dispatcher owns the actual `recv_timeout`
//! deadline arithmetic.

use std::time::Duration;

/// Adaptive batch-size controller. See the module docs for dynamics.
#[derive(Clone, Debug)]
pub struct AdaptiveBatcher {
    max_batch: usize,
    window: Duration,
    target: usize,
}

impl AdaptiveBatcher {
    /// A batcher flushing at most `max_batch` requests per execution
    /// run and holding a partial batch at most `window`.
    pub fn new(max_batch: usize, window: Duration) -> AdaptiveBatcher {
        AdaptiveBatcher {
            max_batch: max_batch.max(1),
            window,
            target: 1,
        }
    }

    /// Current batch-size target: flush as soon as this many requests
    /// are pending.
    pub fn target(&self) -> usize {
        self.target
    }

    /// How long the dispatcher may hold a non-empty partial batch.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Records a flush of `size` requests; `deadline_hit` says the
    /// window expired (as opposed to the batch filling or a mutation /
    /// shutdown forcing the flush).
    pub fn on_flush(&mut self, size: usize, deadline_hit: bool) {
        if deadline_hit {
            if size < self.target {
                self.target = (self.target / 2).max(1);
            }
        } else if size >= self.target {
            self.target = (self.target * 2).min(self.max_batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_under_load_and_saturates() {
        let mut b = AdaptiveBatcher::new(16, Duration::from_micros(200));
        assert_eq!(b.target(), 1);
        for _ in 0..10 {
            let t = b.target();
            b.on_flush(t, false);
        }
        assert_eq!(b.target(), 16);
    }

    #[test]
    fn shrinks_when_idle_flushes_hit_the_deadline() {
        let mut b = AdaptiveBatcher::new(64, Duration::from_micros(200));
        for _ in 0..6 {
            let t = b.target();
            b.on_flush(t, false);
        }
        assert_eq!(b.target(), 64);
        for _ in 0..10 {
            b.on_flush(1, true);
        }
        assert_eq!(b.target(), 1);
        // An idle trickle (one request per window) holds steady at 1
        // instead of oscillating between 1 and 2.
        b.on_flush(1, true);
        assert_eq!(b.target(), 1);
    }

    #[test]
    fn forced_short_flush_does_not_shrink() {
        let mut b = AdaptiveBatcher::new(8, Duration::from_micros(200));
        b.on_flush(1, false); // target 1 filled -> 2
        b.on_flush(2, false); // -> 4
        assert_eq!(b.target(), 4);
        // A mutation forced this flush early; the queue was not idle.
        b.on_flush(2, false);
        assert_eq!(b.target(), 4);
    }
}
