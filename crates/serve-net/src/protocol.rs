//! Length-prefixed wire protocol for the serving frontend.
//!
//! Every frame — in both directions — is a 4-byte **little-endian** u32
//! payload length followed by that many bytes of UTF-8 text, no trailing
//! newline. Request payloads are exactly the `vebo-serve` script grammar
//! (one line per [`vebo::REQUEST_SPECS`] roster entry, e.g. `pr 3`,
//! `add 1 2`), so a request script and a network session carry the same
//! bytes. Response payloads are one of:
//!
//! ```text
//! ok <code> <16-hex-digest>     request executed; FNV-1a result digest
//! busy                          admission control rejected the request
//! err <message>                 malformed request line
//! ```
//!
//! A payload longer than [`MAX_FRAME`] is a protocol violation: the
//! decoder reports [`FrameError::Oversized`] without buffering the
//! payload and the server closes the connection (a length prefix of,
//! say, 4 GiB must not turn into an allocation).
//!
//! Framing is independent of read boundaries: [`FrameDecoder`] accepts
//! bytes as they arrive (half a header, a header plus half a payload,
//! three pipelined frames in one read) and yields complete payloads in
//! order. The property tests in `tests/protocol_props.rs` drive exactly
//! those splits.

use vebo_bench::serve::{parse_request_line, Request};

/// Maximum frame payload size in bytes. Request lines are tens of bytes;
/// the cap only bounds what a malformed or hostile peer can make the
/// server buffer.
pub const MAX_FRAME: usize = 4096;

/// Size of the length prefix.
pub const HEADER_LEN: usize = vebo_net::HEADER_LEN;

/// Appends one framed payload (length prefix + bytes) to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_FRAME);
    vebo_net::encode_frame(payload, out);
}

/// Frames a request as its script-grammar line.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    encode_frame(req.to_line().as_bytes(), out);
}

/// Protocol violation detected while decoding a frame stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(u32),
    /// The payload is not UTF-8.
    NotUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
        }
    }
}

/// Incremental frame decoder: push bytes in whatever chunks the socket
/// delivers, pop complete payloads. After an error the stream is
/// unsynchronized and the connection must be dropped; the decoder keeps
/// returning the error rather than resyncing on garbage.
///
/// This is the UTF-8 text layer over the shared byte framing in
/// [`vebo_net::frame`] (which enforces the [`MAX_FRAME`] cap and the
/// oversized-poisoning policy); this wrapper adds the UTF-8 validation
/// the request/reply line grammar requires.
#[derive(Debug)]
pub struct FrameDecoder {
    inner: vebo_net::FrameDecoder,
    not_utf8: bool,
}

impl Default for FrameDecoder {
    fn default() -> FrameDecoder {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder {
            inner: vebo_net::FrameDecoder::with_max_frame(MAX_FRAME),
            not_utf8: false,
        }
    }

    /// Feeds bytes received from the peer.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.not_utf8 {
            return;
        }
        self.inner.push(bytes);
    }

    /// Pops the next complete payload, `Ok(None)` when more bytes are
    /// needed, or the protocol violation that poisoned the stream.
    pub fn next_frame(&mut self) -> Result<Option<String>, FrameError> {
        if self.not_utf8 {
            return Err(FrameError::NotUtf8);
        }
        match self.inner.next_frame() {
            Err(over) => Err(FrameError::Oversized(over.len)),
            Ok(None) => Ok(None),
            Ok(Some(payload)) => match String::from_utf8(payload) {
                Ok(s) => Ok(Some(s)),
                Err(_) => {
                    self.not_utf8 = true;
                    Err(FrameError::NotUtf8)
                }
            },
        }
    }

    /// Bytes buffered but not yet yielded as frames.
    pub fn pending_bytes(&self) -> usize {
        self.inner.pending_bytes()
    }
}

/// One decoded server-to-client payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// The request executed; `digest` is the same FNV-1a digest
    /// `vebo-serve` prints for an in-process run.
    Ok {
        /// Request-kind code from the roster (`pr`, `add`, ...).
        code: String,
        /// Result digest.
        digest: u64,
    },
    /// Admission control rejected the request (queue or outbox bound
    /// crossed); the client may retry later.
    Busy,
    /// The request line was malformed; the message says why.
    Err(String),
}

impl Reply {
    /// Renders the reply payload (the inverse of [`Reply::parse`]).
    pub fn to_line(&self) -> String {
        match self {
            Reply::Ok { code, digest } => format!("ok {code} {digest:016x}"),
            Reply::Busy => "busy".to_string(),
            Reply::Err(msg) => format!("err {msg}"),
        }
    }

    /// Parses a reply payload.
    pub fn parse(line: &str) -> Result<Reply, String> {
        if line == "busy" {
            return Ok(Reply::Busy);
        }
        if let Some(msg) = line.strip_prefix("err ") {
            return Ok(Reply::Err(msg.to_string()));
        }
        let rest = line
            .strip_prefix("ok ")
            .ok_or_else(|| format!("unrecognized reply: {line:?}"))?;
        let (code, hex) = rest
            .split_once(' ')
            .ok_or_else(|| format!("truncated ok reply: {line:?}"))?;
        let digest =
            u64::from_str_radix(hex, 16).map_err(|_| format!("bad digest in reply: {line:?}"))?;
        Ok(Reply::Ok {
            code: code.to_string(),
            digest,
        })
    }
}

/// Decodes a request frame's payload into a [`Request`], reusing the
/// script parser so the wire grammar and the `--requests` file grammar
/// are the same function. Blank lines/comments are legal in scripts but
/// meaningless as frames, so they are errors here.
pub fn decode_request(payload: &str) -> Result<Request, String> {
    match parse_request_line(payload)? {
        Some(req) => Ok(req),
        None => Err("empty request frame".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_one_byte_at_a_time() {
        let reqs = [
            Request::PageRankSeed { seed: 3 },
            Request::AddEdge { u: 1, v: 2 },
            Request::PageRankDelta { rounds: 5 },
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            encode_request(r, &mut wire);
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in wire {
            dec.push(&[b]);
            while let Some(line) = dec.next_frame().unwrap() {
                got.push(decode_request(&line).unwrap());
            }
        }
        assert_eq!(got, reqs);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn oversized_length_poisons_without_buffering() {
        let mut dec = FrameDecoder::new();
        dec.push(&(u32::MAX).to_le_bytes());
        assert_eq!(dec.next_frame(), Err(FrameError::Oversized(u32::MAX)));
        // Still poisoned on the next poll, and pushes are ignored.
        dec.push(b"garbage");
        assert_eq!(dec.next_frame(), Err(FrameError::Oversized(u32::MAX)));
    }

    #[test]
    fn reply_lines_round_trip() {
        for reply in [
            Reply::Ok {
                code: "pr".to_string(),
                digest: 0xdead_beef_0123_4567,
            },
            Reply::Busy,
            Reply::Err("line 1: unknown request".to_string()),
        ] {
            assert_eq!(Reply::parse(&reply.to_line()).unwrap(), reply);
        }
        assert!(Reply::parse("nope").is_err());
        assert!(Reply::parse("ok pr zz").is_err());
    }

    #[test]
    fn blank_frames_are_rejected() {
        assert!(decode_request("").is_err());
        assert!(decode_request("# comment").is_err());
    }
}
