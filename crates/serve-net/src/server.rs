//! The non-blocking TCP server: an epoll readiness loop feeding an
//! admission-controlled queue in front of one dispatcher thread that
//! micro-batches compatible requests into the shared `ServeEngine`.
//!
//! # Threading and ordering model
//!
//! Two threads per server, regardless of connection count:
//!
//! - the **readiness loop** (the thread calling [`Server::run`]) owns
//!   every socket: it accepts, reads, decodes frames, applies admission
//!   control, and writes responses. No socket is ever touched from
//!   another thread.
//! - the **dispatcher** owns the engine: it pulls admitted requests off
//!   one FIFO channel, coalesces maximal runs of *query* requests into
//!   [`ServeEngine::run_coalesced`] calls (a mutation at the head of
//!   the queue forces the pending run to flush first, preserving global
//!   request order), and pushes completions back.
//!
//! Because a single FIFO channel feeds a single dispatcher, a client
//! driving one connection observes exactly the semantics of an
//! in-process `run_batch(.., concurrency = 1)`: same mutation order,
//! same epochs, bit-identical digests. That is the property the
//! loopback conformance test and the CI network leg diff.
//!
//! Per connection, responses are delivered in request order even though
//! BUSY/err replies are produced instantly on the readiness thread
//! while `ok` replies arrive later from the dispatcher: every accepted
//! frame is assigned a sequence number and replies wait in a reorder
//! buffer until all earlier sequences have been written.
//!
//! # Readiness-loop invariants (see also [`crate::epoll`])
//!
//! - All registrations are level-triggered; `EPOLLOUT` interest is held
//!   **only while a connection's outbox is non-empty**, otherwise every
//!   wait would spin on permanently-writable sockets.
//! - A connection's fd is deregistered in the same scope that drops the
//!   `TcpStream`, so a reused fd number can never alias a stale epoll
//!   registration.
//! - The dispatcher never blocks on a socket and the readiness loop
//!   never blocks on the engine, so a slow query cannot stall accepts
//!   and a slow client cannot stall the engine (its outbox just grows
//!   until admission control answers BUSY).
//! - Each readiness event reads at most `READ_BUDGET` bytes from its
//!   connection before yielding back to the loop. A client that floods
//!   one connection therefore cannot starve the others: the leftover
//!   bytes stay in the kernel receive buffer and the level-triggered
//!   registration fires again on the next wait, after every other ready
//!   connection has had its turn ([`ServerStats::fair_yields`] counts
//!   these forced yields).

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vebo_bench::serve::{Request, ServeEngine, ServeError};

use crate::batch::AdaptiveBatcher;
use crate::epoll::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::protocol::{decode_request, encode_frame, FrameDecoder, Reply};

/// Epoll token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Epoll token of the dispatcher wake pipe.
const TOKEN_WAKE: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Per-connection outbox bound in bytes: once a client stops reading
/// and this many response bytes have queued, new requests on that
/// connection are answered BUSY instead of buffering without bound.
const MAX_OUTBOX: usize = 64 * 1024;

/// Upper bound on how long [`Server::run`] keeps flushing after a
/// shutdown request before abandoning unflushed connections.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Per-readiness-event read bound in bytes. One connection with a deep
/// kernel receive buffer gets at most this much decoded per epoll wait;
/// anything beyond waits for the next level-triggered wakeup so other
/// ready connections are serviced in between.
const READ_BUDGET: usize = 16 * 1024;

/// Tunables for one [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Admission bound: requests admitted but not yet answered, across
    /// all connections. Crossing it answers BUSY.
    pub max_inflight: usize,
    /// How long the dispatcher holds a partial batch before flushing.
    pub batch_window: Duration,
    /// Largest coalesced batch per engine execution.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_inflight: 64,
            batch_window: Duration::from_micros(200),
            max_batch: 32,
        }
    }
}

/// Counters the readiness loop accumulates; returned by [`Server::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request frames decoded (admitted or not).
    pub requests: u64,
    /// Requests answered BUSY by admission control.
    pub busy: u64,
    /// Connections dropped for protocol violations (oversized frame,
    /// non-UTF-8 payload).
    pub protocol_errors: u64,
    /// Readiness events that exhausted the per-event read budget
    /// (`READ_BUDGET`) and yielded with
    /// bytes still unread — the fairness bound engaging under a
    /// single-connection flood.
    pub fair_yields: u64,
}

/// One admitted request travelling to the dispatcher.
struct Work {
    conn: u64,
    seq: u64,
    req: Request,
}

/// One finished request travelling back to the readiness loop.
struct Completion {
    conn: u64,
    seq: u64,
    reply: Reply,
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Bytes queued for the socket, in delivery order.
    outbox: Vec<u8>,
    /// Finished replies waiting for earlier sequence numbers.
    ready: BTreeMap<u64, Reply>,
    /// Next sequence number to assign to an incoming frame.
    next_assign: u64,
    /// Next sequence number to append to the outbox.
    next_deliver: u64,
    /// Peer EOF or protocol violation: no more reads, close once every
    /// assigned sequence has been delivered and the outbox drained.
    read_closed: bool,
    /// Interest set currently registered with epoll.
    interest: u32,
}

impl Conn {
    fn done(&self) -> bool {
        self.read_closed && self.next_deliver == self.next_assign && self.outbox.is_empty()
    }
}

/// A bound, not-yet-running serving frontend.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7171`, port 0 for ephemeral).
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server { listener, config })
    }

    /// The bound address (the ephemeral port, under `bind("...:0")`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the readiness loop on the calling thread until `stop` is
    /// set, then drains: the listener closes immediately, admitted
    /// requests finish, their responses flush, and the method returns.
    pub fn run(self, engine: Arc<ServeEngine>, stop: &AtomicBool) -> io::Result<ServerStats> {
        let (work_tx, work_rx) = std::sync::mpsc::channel::<Work>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<Completion>();
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let inflight = AtomicUsize::new(0);
        let batcher = AdaptiveBatcher::new(self.config.max_batch, self.config.batch_window);

        std::thread::scope(|scope| {
            let dispatcher_engine = Arc::clone(&engine);
            let dispatcher_inflight = &inflight;
            scope.spawn(move || {
                dispatcher_loop(
                    dispatcher_engine,
                    work_rx,
                    done_tx,
                    wake_tx,
                    dispatcher_inflight,
                    batcher,
                )
            });
            self.readiness_loop(engine, stop, work_tx, done_rx, wake_rx, &inflight)
        })
    }

    fn readiness_loop(
        &self,
        engine: Arc<ServeEngine>,
        stop: &AtomicBool,
        work_tx: Sender<Work>,
        done_rx: Receiver<Completion>,
        wake_rx: UnixStream,
        inflight: &AtomicUsize,
    ) -> io::Result<ServerStats> {
        let epoll = Epoll::new()?;
        epoll.add(self.listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wake_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKE)?;

        let mut stats = ServerStats::default();
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token = TOKEN_FIRST_CONN;
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 64];
        // `Some` while we are still accepting/reading; dropping it lets
        // the dispatcher's recv loop observe disconnect once drained.
        let mut work_tx = Some(work_tx);
        let mut dispatcher_done = false;
        let mut drain_started: Option<Instant> = None;

        loop {
            if drain_started.is_none() && stop.load(Ordering::SeqCst) {
                // Shutdown: stop accepting (deregister the listener),
                // stop reading (interest updates below), and close the
                // work channel so the dispatcher drains and exits.
                epoll.delete(self.listener.as_raw_fd())?;
                work_tx = None;
                drain_started = Some(Instant::now());
            }
            let draining = drain_started.is_some();
            if drain_started.is_some_and(|t: Instant| {
                (dispatcher_done && conns.values().all(|c| c.outbox.is_empty()))
                    || t.elapsed() > DRAIN_DEADLINE
            }) {
                for (_, conn) in conns.drain() {
                    let _ = epoll.delete(conn.stream.as_raw_fd());
                }
                return Ok(stats);
            }

            let n = epoll.wait(&mut events, 25)?;
            let fired: Vec<(u64, u32)> = events[..n]
                .iter()
                .map(|e| (e.token(), e.readiness()))
                .collect();

            for (token, readiness) in fired {
                match token {
                    TOKEN_LISTENER => {
                        if drain_started.is_some() {
                            continue;
                        }
                        accept_all(
                            &self.listener,
                            &epoll,
                            &mut conns,
                            &mut next_token,
                            &mut stats,
                        );
                    }
                    TOKEN_WAKE => {
                        let mut sink = [0u8; 64];
                        while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                    }
                    token => {
                        let Some(conn) = conns.get_mut(&token) else {
                            continue;
                        };
                        if readiness & (EPOLLERR | EPOLLHUP) != 0 {
                            let _ = epoll.delete(conn.stream.as_raw_fd());
                            conns.remove(&token);
                            continue;
                        }
                        if readiness & EPOLLIN != 0 && !conn.read_closed && !draining {
                            read_conn(
                                conn,
                                &engine,
                                work_tx.as_ref().expect("reading implies not draining"),
                                token,
                                inflight,
                                self.config.max_inflight,
                                &mut stats,
                            );
                        }
                        if readiness & EPOLLOUT != 0 {
                            flush_outbox(conn);
                        }
                    }
                }
            }

            // Route finished requests into their reorder buffers.
            loop {
                match done_rx.try_recv() {
                    Ok(c) => {
                        // Engine-side refusals (bounded delta log full)
                        // count into the same BUSY total as
                        // admission-control refusals.
                        if matches!(c.reply, Reply::Busy) {
                            stats.busy += 1;
                        }
                        if let Some(conn) = conns.get_mut(&c.conn) {
                            conn.ready.insert(c.seq, c.reply);
                            pump_ready(conn);
                            flush_outbox(conn);
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        dispatcher_done = true;
                        break;
                    }
                }
            }

            // Reconcile interest sets and reap finished connections.
            conns.retain(|&token, conn| {
                if conn.done() {
                    let _ = epoll.delete(conn.stream.as_raw_fd());
                    return false;
                }
                let mut want = 0;
                if !conn.read_closed && !draining {
                    want |= EPOLLIN;
                }
                if !conn.outbox.is_empty() {
                    want |= EPOLLOUT;
                }
                if want != conn.interest {
                    if epoll.modify(conn.stream.as_raw_fd(), want, token).is_err() {
                        let _ = epoll.delete(conn.stream.as_raw_fd());
                        return false;
                    }
                    conn.interest = want;
                }
                true
            });
        }
    }
}

fn accept_all(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    stats: &mut ServerStats,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if epoll.add(stream.as_raw_fd(), EPOLLIN, token).is_err() {
                    continue;
                }
                stats.connections += 1;
                conns.insert(
                    token,
                    Conn {
                        stream,
                        decoder: FrameDecoder::new(),
                        outbox: Vec::new(),
                        ready: BTreeMap::new(),
                        next_assign: 0,
                        next_deliver: 0,
                        read_closed: false,
                        interest: EPOLLIN,
                    },
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Reads up to [`READ_BUDGET`] bytes, decodes frames, and either admits
/// each request to the dispatcher or answers BUSY/err locally — all
/// replies flow through the sequence-ordered reorder buffer.
fn read_conn(
    conn: &mut Conn,
    engine: &ServeEngine,
    work_tx: &Sender<Work>,
    token: u64,
    inflight: &AtomicUsize,
    max_inflight: usize,
    stats: &mut ServerStats,
) {
    let mut buf = [0u8; 4096];
    let mut budget = READ_BUDGET;
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.decoder.push(&buf[..n]);
                budget = budget.saturating_sub(n);
                if budget == 0 {
                    // Fairness bound: leftover bytes stay in the kernel
                    // buffer; the level-triggered registration re-fires
                    // after every other ready connection is serviced.
                    stats.fair_yields += 1;
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.read_closed = true;
                break;
            }
        }
    }
    loop {
        match conn.decoder.next_frame() {
            Ok(Some(line)) => {
                stats.requests += 1;
                let seq = conn.next_assign;
                conn.next_assign += 1;
                match decode_request(&line) {
                    Ok(req) => {
                        let depth = inflight.load(Ordering::SeqCst);
                        let admitted = depth < max_inflight && conn.outbox.len() < MAX_OUTBOX;
                        engine.sink().record_admission(admitted, depth as u64);
                        if admitted {
                            inflight.fetch_add(1, Ordering::SeqCst);
                            // Disconnect is unreachable while we hold a
                            // sender; drop the request if it happens.
                            let _ = work_tx.send(Work {
                                conn: token,
                                seq,
                                req,
                            });
                        } else {
                            stats.busy += 1;
                            conn.ready.insert(seq, Reply::Busy);
                        }
                    }
                    Err(msg) => {
                        conn.ready.insert(seq, Reply::Err(msg));
                    }
                }
            }
            Ok(None) => break,
            Err(e) => {
                // Unsynchronized stream: answer once, then close after
                // everything already admitted has been delivered.
                stats.protocol_errors += 1;
                let seq = conn.next_assign;
                conn.next_assign += 1;
                conn.ready.insert(seq, Reply::Err(e.to_string()));
                conn.read_closed = true;
                break;
            }
        }
    }
    pump_ready(conn);
    flush_outbox(conn);
}

/// Moves consecutively-sequenced replies from the reorder buffer into
/// the outbox.
fn pump_ready(conn: &mut Conn) {
    while let Some(reply) = conn.ready.remove(&conn.next_deliver) {
        encode_frame(reply.to_line().as_bytes(), &mut conn.outbox);
        conn.next_deliver += 1;
    }
}

/// Writes as much of the outbox as the socket accepts right now.
fn flush_outbox(conn: &mut Conn) {
    while !conn.outbox.is_empty() {
        match conn.stream.write(&conn.outbox) {
            Ok(0) => break,
            Ok(n) => {
                conn.outbox.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Peer is gone; EPOLLHUP/ERR will reap the connection.
                conn.outbox.clear();
                conn.read_closed = true;
                break;
            }
        }
    }
}

/// The dispatcher: admitted requests in FIFO order, runs of queries
/// coalesced per the adaptive batcher, mutations executed alone at
/// their exact queue position.
fn dispatcher_loop(
    engine: Arc<ServeEngine>,
    work_rx: Receiver<Work>,
    done_tx: Sender<Completion>,
    wake_tx: UnixStream,
    inflight: &AtomicUsize,
    mut batcher: AdaptiveBatcher,
) {
    let mut pending: Vec<Work> = Vec::new();
    let mut deadline: Option<Instant> = None;

    // `Write` is implemented for `&UnixStream`, so the wake writes
    // below borrow the stream immutably and the closure stays `Fn`.
    let flush = |pending: &mut Vec<Work>,
                 batcher: &mut AdaptiveBatcher,
                 deadline: &mut Option<Instant>,
                 deadline_hit: bool| {
        *deadline = None;
        if pending.is_empty() {
            return;
        }
        let reqs: Vec<Request> = pending.iter().map(|w| w.req).collect();
        let responses = engine.run_coalesced(&reqs);
        batcher.on_flush(pending.len(), deadline_hit);
        inflight.fetch_sub(pending.len(), Ordering::SeqCst);
        for (w, resp) in pending.drain(..).zip(responses) {
            let _ = done_tx.send(Completion {
                conn: w.conn,
                seq: w.seq,
                reply: Reply::Ok {
                    code: w.req.code().to_string(),
                    digest: resp.digest,
                },
            });
        }
        let _ = (&wake_tx).write(&[1]);
    };

    loop {
        let work = if let Some(d) = deadline {
            let now = Instant::now();
            if now >= d {
                flush(&mut pending, &mut batcher, &mut deadline, true);
                continue;
            }
            match work_rx.recv_timeout(d - now) {
                Ok(w) => w,
                Err(RecvTimeoutError::Timeout) => {
                    flush(&mut pending, &mut batcher, &mut deadline, true);
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match work_rx.recv() {
                Ok(w) => w,
                Err(_) => break,
            }
        };

        if work.req.mutates() {
            // Flush the pending query run first so the mutation lands
            // at its exact position in the global request order. The
            // engine may refuse the mutation (bounded delta log full,
            // weighted snapshot): refusals become wire replies, never
            // dispatcher panics.
            flush(&mut pending, &mut batcher, &mut deadline, false);
            let reply = match engine.try_handle(&work.req) {
                Ok(resp) => Reply::Ok {
                    code: work.req.code().to_string(),
                    digest: resp.digest,
                },
                Err(ServeError::Busy { .. }) => Reply::Busy,
                Err(e) => Reply::Err(e.to_string()),
            };
            inflight.fetch_sub(1, Ordering::SeqCst);
            let _ = done_tx.send(Completion {
                conn: work.conn,
                seq: work.seq,
                reply,
            });
            let _ = (&wake_tx).write(&[1]);
        } else {
            if pending.is_empty() {
                deadline = Some(Instant::now() + batcher.window());
            }
            pending.push(work);
            if pending.len() >= batcher.target() {
                flush(&mut pending, &mut batcher, &mut deadline, false);
            }
        }
    }
    // Work channel closed (shutdown): flush the tail, then drop
    // `done_tx` so the readiness loop knows the drain is complete.
    flush(&mut pending, &mut batcher, &mut deadline, false);
}
