//! CLI contract tests for `vebo-served`: flag validation reachable from
//! the command line must exit with a usage error, never a panic.

#![cfg(target_os = "linux")]

use std::process::Command;

#[test]
fn compact_every_zero_is_a_usage_error_not_a_panic() {
    let out = Command::new(env!("CARGO_BIN_EXE_vebo-served"))
        .args(["--compact-every", "0"])
        .output()
        .expect("spawn vebo-served");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(
        stderr.contains("--compact-every must be at least 1"),
        "stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "validation fell through to a panic:\n{stderr}"
    );
}

#[test]
fn log_cap_zero_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_vebo-served"))
        .args(["--log-cap", "0"])
        .output()
        .expect("spawn vebo-served");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(
        stderr.contains("--log-cap must be at least 1"),
        "stderr:\n{stderr}"
    );
}
