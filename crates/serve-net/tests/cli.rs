//! CLI contract tests for `vebo-served`: flag validation reachable from
//! the command line must exit with a usage error, never a panic.

#![cfg(target_os = "linux")]

use std::process::Command;

#[test]
fn compact_every_zero_is_a_usage_error_not_a_panic() {
    let out = Command::new(env!("CARGO_BIN_EXE_vebo-served"))
        .args(["--compact-every", "0"])
        .output()
        .expect("spawn vebo-served");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(
        stderr.contains("--compact-every must be at least 1"),
        "stderr:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "validation fell through to a panic:\n{stderr}"
    );
}

#[test]
fn log_cap_zero_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_vebo-served"))
        .args(["--log-cap", "0"])
        .output()
        .expect("spawn vebo-served");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr:\n{stderr}");
    assert!(
        stderr.contains("--log-cap must be at least 1"),
        "stderr:\n{stderr}"
    );
}

/// A server that answers part of a pipelined batch and then closes must
/// not hang the client: it reports the unacknowledged sends and exits
/// nonzero (the disconnect-mid-pipeline regression).
#[test]
fn client_reports_unacknowledged_sends_when_server_closes_mid_pipeline() {
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use vebo_serve_net::protocol::{encode_frame, FrameDecoder};

    let script =
        std::env::temp_dir().join(format!("vebo-client-disconnect-{}.txt", std::process::id()));
    std::fs::write(&script, "label 1\nlabel 2\nlabel 3\nlabel 4\nlabel 5\n").unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        // Drain the whole pipelined batch (client half-closes when done),
        // answer only the first request, then close the connection.
        let mut decoder = FrameDecoder::new();
        let mut frames = 0usize;
        let mut buf = [0u8; 4096];
        loop {
            while decoder.next_frame().unwrap().is_some() {
                frames += 1;
            }
            match conn.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => decoder.push(&buf[..n]),
            }
        }
        assert_eq!(frames, 5, "client should have pipelined every request");
        let mut reply = Vec::new();
        encode_frame("ok label 0000000000000000".as_bytes(), &mut reply);
        conn.write_all(&reply).unwrap();
        // Dropping conn closes mid-pipeline with 4 requests outstanding.
    });

    let out = Command::new(env!("CARGO_BIN_EXE_vebo-client"))
        .args(["--connect", &addr.to_string()])
        .args(["--requests", script.to_str().unwrap()])
        .output()
        .expect("spawn vebo-client");
    server.join().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(
        stderr.contains("connection lost after 1 replies"),
        "stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("4 unacknowledged request(s)"),
        "stderr:\n{stderr}"
    );
    assert!(
        !stdout.contains("batch digest="),
        "a truncated run must not print a batch digest:\n{stdout}"
    );
    let _ = std::fs::remove_file(&script);
}
