//! Loopback conformance: digests served over real TCP — micro-batching,
//! admission control and all — must be **bit-identical** to an
//! in-process `ServeEngine` handling the same script sequentially, on
//! both concurrent executor backends. Plus the observable-backpressure
//! and graceful-drain contracts of the server.

#![cfg(target_os = "linux")]

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vebo_bench::serve::{generate_requests, Request, ServeEngine};
use vebo_engine::{ExecMode, Executor, SystemProfile};
use vebo_graph::Dataset;
use vebo_serve_net::{NetClient, Reply, Server, ServerConfig};

fn engine(mode: ExecMode) -> ServeEngine {
    let g = Dataset::YahooLike.build(0.03);
    let profile = SystemProfile::polymer_like();
    ServeEngine::new(g, profile, Executor::new(profile).with_mode(mode))
}

/// Mixed workload with deliberate duplicate queries appended so the
/// dispatcher's coalescing path demonstrably dedupes (the batch
/// counters are asserted below).
fn workload() -> Vec<Request> {
    let mut requests = generate_requests(48, 7);
    for _ in 0..8 {
        requests.push(Request::Label { v: 3 });
        requests.push(Request::Bfs { seed: 5 });
    }
    requests
}

fn conformance(mode: ExecMode) {
    let requests = workload();

    // In-process reference: the same engine configuration handling the
    // same requests one by one (what `vebo-serve --concurrency 1`
    // does). Its digests are the ground truth.
    let reference = engine(mode);
    let expect: Vec<u64> = requests
        .iter()
        .map(|r| reference.handle(r).digest)
        .collect();

    let served = Arc::new(engine(mode));
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_inflight: 1024,
            batch_window: Duration::from_micros(200),
            max_batch: 16,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let run_engine = Arc::clone(&served);
        let handle = scope.spawn(|| server.run(run_engine, &stop));

        let mut client = NetClient::connect(&addr, Duration::from_secs(10)).unwrap();
        // Pipeline the whole script on one connection: replies come
        // back in request order, so index i pairs with request i.
        for r in &requests {
            client.send(r).unwrap();
        }
        for (i, (req, want)) in requests.iter().zip(&expect).enumerate() {
            match client.recv().unwrap() {
                Reply::Ok { code, digest } => {
                    assert_eq!(code, req.code(), "req {i} code");
                    assert_eq!(
                        digest,
                        *want,
                        "req {i} ({}) digest over TCP != in-process",
                        req.to_line()
                    );
                }
                other => panic!("req {i} ({}): unexpected {other:?}", req.to_line()),
            }
        }

        stop.store(true, Ordering::SeqCst);
        let stats = handle.join().unwrap().unwrap();
        assert_eq!(stats.requests, requests.len() as u64);
        assert_eq!(stats.busy, 0);
        assert_eq!(stats.protocol_errors, 0);
    });

    // Micro-batching was active and actually coalesced: more requests
    // rode batches than engine executions were paid for.
    let m = served.metrics();
    assert!(m.batches > 0, "no batches flushed");
    assert!(
        m.batched_requests > m.batch_executions,
        "coalescing never deduped: {} requests vs {} executions",
        m.batched_requests,
        m.batch_executions,
    );
    assert!(m.admitted >= requests.len() as u64 - m.rejected);
}

#[test]
fn tcp_digests_match_in_process_on_rayon() {
    conformance(ExecMode::Parallel);
}

#[test]
fn tcp_digests_match_in_process_on_sharded() {
    conformance(ExecMode::Sharded { shards: 4 });
}

#[test]
fn tiny_inflight_bound_answers_busy() {
    let served = Arc::new(engine(ExecMode::Parallel));
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_inflight: 1,
            batch_window: Duration::from_micros(100),
            max_batch: 8,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let run_engine = Arc::clone(&served);
        let handle = scope.spawn(|| server.run(run_engine, &stop));

        let mut client = NetClient::connect(&addr, Duration::from_secs(10)).unwrap();
        // Flood with whole-graph sweeps: with one admission slot, the
        // burst must overflow into BUSY replies.
        let req = Request::PageRankDelta { rounds: 4 };
        let total = 32;
        for _ in 0..total {
            client.send(&req).unwrap();
        }
        let (mut oks, mut busy) = (0u64, 0u64);
        for _ in 0..total {
            match client.recv().unwrap() {
                Reply::Ok { digest, .. } => {
                    oks += 1;
                    // Rejections never change results: every accepted
                    // sweep returns the same digest.
                    assert_eq!(digest, served.handle(&req).digest);
                }
                Reply::Busy => busy += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(busy > 0, "no BUSY under max_inflight=1 and a 32-deep burst");
        assert!(oks > 0, "admission control rejected everything");

        stop.store(true, Ordering::SeqCst);
        let stats = handle.join().unwrap().unwrap();
        assert_eq!(stats.busy, busy);
    });
    let m = served.metrics();
    assert!(m.rejected > 0);
    assert!(m.queue_depth_max <= 1);
}

#[test]
fn malformed_lines_get_err_replies_and_oversized_frames_close() {
    let served = Arc::new(engine(ExecMode::Parallel));
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let run_engine = Arc::clone(&served);
        let handle = scope.spawn(|| server.run(run_engine, &stop));

        let mut client = NetClient::connect(&addr, Duration::from_secs(10)).unwrap();
        client.send(&Request::Label { v: 1 }).unwrap();
        client.send_payload(b"walk 1 2").unwrap();
        client.send_payload(b"pr").unwrap();
        client.send(&Request::Label { v: 2 }).unwrap();

        // Replies stay in request order: ok, err, err, ok.
        assert!(matches!(client.recv().unwrap(), Reply::Ok { .. }));
        assert!(matches!(client.recv().unwrap(), Reply::Err(_)));
        assert!(matches!(client.recv().unwrap(), Reply::Err(_)));
        assert!(matches!(client.recv().unwrap(), Reply::Ok { .. }));

        // An oversized length prefix gets one err reply, then the
        // server hangs up.
        let writer = client.writer().unwrap();
        (&writer).write_all(&(1u32 << 24).to_le_bytes()).unwrap();
        assert!(matches!(client.recv().unwrap(), Reply::Err(_)));
        assert!(client.recv().is_err());

        stop.store(true, Ordering::SeqCst);
        let stats = handle.join().unwrap().unwrap();
        assert_eq!(stats.protocol_errors, 1);
    });
}

#[test]
fn weighted_snapshot_answers_err_to_mutations_and_keeps_serving() {
    // A weighted snapshot serves queries but refuses mutations; over the
    // wire that must be an `err` reply on that request, not a dispatcher
    // panic that kills the daemon.
    let g = Dataset::YahooLike.build(0.03).with_hash_weights(16);
    let profile = SystemProfile::polymer_like();
    let served = Arc::new(ServeEngine::new(
        g,
        profile,
        Executor::new(profile).with_mode(ExecMode::Parallel),
    ));
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let run_engine = Arc::clone(&served);
        let handle = scope.spawn(|| server.run(run_engine, &stop));

        let mut client = NetClient::connect(&addr, Duration::from_secs(10)).unwrap();
        client.send(&Request::Label { v: 1 }).unwrap();
        client.send(&Request::AddEdge { u: 1, v: 2 }).unwrap();
        client.send(&Request::DelEdge { u: 1, v: 2 }).unwrap();
        client.send(&Request::Label { v: 1 }).unwrap();

        assert!(matches!(client.recv().unwrap(), Reply::Ok { .. }));
        for _ in 0..2 {
            match client.recv().unwrap() {
                Reply::Err(msg) => {
                    assert!(msg.contains("unweighted"), "unexpected err text: {msg}")
                }
                other => panic!("weighted mutation answered {other:?}, want err"),
            }
        }
        // The connection and the engine survived the refusals.
        assert!(matches!(client.recv().unwrap(), Reply::Ok { .. }));

        stop.store(true, Ordering::SeqCst);
        let stats = handle.join().unwrap().unwrap();
        assert_eq!(stats.protocol_errors, 0);
    });
}

#[test]
fn full_delta_log_answers_busy_and_recovers_after_compaction() {
    // Bound the delta log at one buffered mutation: a pipelined burst of
    // distinct inserts must see `busy` while the background compactor
    // catches up, and the engine keeps answering (no panic, no hang).
    let mut e = engine(ExecMode::Parallel);
    e.set_log_capacity(1);
    e.set_compaction_blocking(false);
    let served = Arc::new(e);
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let run_engine = Arc::clone(&served);
        let handle = scope.spawn(|| server.run(run_engine, &stop));

        let mut client = NetClient::connect(&addr, Duration::from_secs(10)).unwrap();
        let total = 64u32;
        for i in 0..total {
            client
                .send(&Request::AddEdge {
                    u: 2 * i,
                    v: 2 * i + 1,
                })
                .unwrap();
        }
        let (mut oks, mut busy) = (0u64, 0u64);
        for _ in 0..total {
            match client.recv().unwrap() {
                Reply::Ok { .. } => oks += 1,
                Reply::Busy => busy += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(oks > 0, "every insert was refused");
        assert!(
            busy > 0,
            "a 64-insert burst against log-cap 1 never went busy"
        );

        // Once the backlog drains, the lane accepts mutations again.
        served.drain_compaction();
        client.send(&Request::AddEdge { u: 999, v: 998 }).unwrap();
        assert!(matches!(client.recv().unwrap(), Reply::Ok { .. }));

        stop.store(true, Ordering::SeqCst);
        let stats = handle.join().unwrap().unwrap();
        assert!(stats.busy >= busy);
    });
    let m = served.metrics();
    assert!(m.log_stalls > 0, "refusals were not recorded as log stalls");
}

#[test]
fn read_budget_bounds_one_connections_drain_per_event() {
    // Regression for connection-level fairness: a single connection that
    // floods more bytes than READ_BUDGET before the readiness loop runs
    // must be drained across multiple events (counted as fair yields),
    // with every frame still answered in order.
    let served = Arc::new(engine(ExecMode::Parallel));
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_inflight: 4096,
            batch_window: Duration::from_micros(100),
            max_batch: 32,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let stop = AtomicBool::new(false);

    // Connect and write the whole flood BEFORE the readiness loop starts
    // (the bound listener's backlog completes the handshake): the first
    // readiness event then deterministically finds far more than one
    // read budget pending.
    let mut client = NetClient::connect(&addr, Duration::from_secs(10)).unwrap();
    let total = 2500usize; // 9 bytes framed each: ~22 KiB, budget is 16 KiB
    for _ in 0..total {
        client.send(&Request::Label { v: 3 }).unwrap();
    }

    std::thread::scope(|scope| {
        let run_engine = Arc::clone(&served);
        let handle = scope.spawn(|| server.run(run_engine, &stop));

        let (mut oks, mut busy) = (0usize, 0usize);
        for _ in 0..total {
            match client.recv().unwrap() {
                Reply::Ok { .. } => oks += 1,
                Reply::Busy => busy += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(oks + busy, total);
        assert!(oks > 0, "flood was entirely rejected");

        stop.store(true, Ordering::SeqCst);
        let stats = handle.join().unwrap().unwrap();
        assert_eq!(stats.requests, total as u64);
        assert!(
            stats.fair_yields >= 1,
            "a {total}-frame flood never exhausted the per-event read budget"
        );
    });
}

#[test]
fn drain_completes_admitted_requests_before_exit() {
    let served = Arc::new(engine(ExecMode::Parallel));
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let run_engine = Arc::clone(&served);
        let handle = scope.spawn(|| server.run(run_engine, &stop));

        let mut client = NetClient::connect(&addr, Duration::from_secs(10)).unwrap();
        for i in 0..10 {
            client.send(&Request::Bfs { seed: i }).unwrap();
        }
        // Once the first reply is back the batch has been read and
        // admitted; a stop now must still answer everything admitted.
        let first = client.recv().unwrap();
        assert!(matches!(first, Reply::Ok { .. }));
        stop.store(true, Ordering::SeqCst);

        let mut replies = 1;
        // recv errors once the server closes the drained connection.
        while let Ok(reply) = client.recv() {
            assert!(matches!(reply, Reply::Ok { .. }));
            replies += 1;
        }
        assert!(replies >= 1);
        let stats = handle.join().unwrap().unwrap();
        assert!(stats.requests >= replies as u64);
    });
}
