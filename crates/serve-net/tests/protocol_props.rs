//! Property tests for the wire codec: framing must survive arbitrary
//! read-boundary splits, pipelining, truncation, and hostile length
//! prefixes — the same adversarial-transport discipline as the
//! capped-`Read` streaming-I/O tests in `vebo-graph`.

use proptest::prelude::*;
use vebo_bench::serve::{parse_request_line, Request};
use vebo_serve_net::protocol::{
    decode_request, encode_frame, encode_request, FrameDecoder, FrameError, Reply, HEADER_LEN,
    MAX_FRAME,
};

/// Arbitrary requests over the full roster, arguments unconstrained
/// (the grammar carries raw u32s; vertex clamping is engine policy).
fn arb_request() -> impl Strategy<Value = Request> {
    (0u8..6, any::<u32>(), any::<u32>()).prop_map(|(k, a, b)| match k {
        0 => Request::PageRankSeed { seed: a },
        1 => Request::PageRankDelta { rounds: a },
        2 => Request::Bfs { seed: a },
        3 => Request::Label { v: a },
        4 => Request::AddEdge { u: a, v: b },
        _ => Request::DelEdge { u: a, v: b },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Request lines round-trip through the shared script grammar.
    #[test]
    fn request_lines_round_trip(req in arb_request()) {
        let line = req.to_line();
        prop_assert_eq!(parse_request_line(&line).unwrap(), Some(req));
        prop_assert_eq!(decode_request(&line).unwrap(), req);
    }

    /// A pipelined burst of frames decodes identically no matter how
    /// the transport splits it: one byte at a time, odd chunk sizes,
    /// or one big read.
    #[test]
    fn framing_survives_arbitrary_read_boundaries(
        reqs in proptest::collection::vec(arb_request(), 1..20),
        cap in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for r in &reqs {
            encode_request(r, &mut wire);
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(cap) {
            dec.push(chunk);
            while let Some(line) = dec.next_frame().unwrap() {
                got.push(decode_request(&line).unwrap());
            }
        }
        prop_assert_eq!(got, reqs);
        prop_assert_eq!(dec.pending_bytes(), 0);
    }

    /// A truncated stream yields exactly the fully-contained prefix
    /// frames, then waits for more bytes — never a partial payload,
    /// never a panic.
    #[test]
    fn truncation_yields_only_complete_frames(
        reqs in proptest::collection::vec(arb_request(), 1..12),
        frac in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        let mut ends = Vec::new();
        for r in &reqs {
            encode_request(r, &mut wire);
            ends.push(wire.len());
        }
        let cut = (wire.len() as f64 * frac) as usize;
        let complete = ends.iter().filter(|&&e| e <= cut).count();

        let mut dec = FrameDecoder::new();
        dec.push(&wire[..cut]);
        let mut got = 0;
        while let Some(line) = dec.next_frame().unwrap() {
            prop_assert_eq!(decode_request(&line).unwrap(), reqs[got]);
            got += 1;
        }
        prop_assert_eq!(got, complete);
        // Feeding the rest completes the tail.
        dec.push(&wire[cut..]);
        while dec.next_frame().unwrap().is_some() {
            got += 1;
        }
        prop_assert_eq!(got, reqs.len());
    }

    /// Any length prefix beyond the cap poisons the stream immediately,
    /// before any payload is buffered, and the error is sticky.
    #[test]
    fn oversized_lengths_poison_the_decoder(len in (MAX_FRAME as u32 + 1)..u32::MAX) {
        let mut dec = FrameDecoder::new();
        dec.push(&len.to_le_bytes());
        prop_assert_eq!(dec.next_frame(), Err(FrameError::Oversized(len)));
        dec.push(&[0u8; 32]);
        prop_assert_eq!(dec.next_frame(), Err(FrameError::Oversized(len)));
    }

    /// Reply payloads round-trip for arbitrary digests and codes.
    #[test]
    fn replies_round_trip(digest in any::<u64>(), k in 0u8..3) {
        let reply = match k {
            0 => Reply::Ok { code: "prd".to_string(), digest },
            1 => Reply::Busy,
            _ => Reply::Err(format!("line 1: bad vertex {digest}")),
        };
        prop_assert_eq!(Reply::parse(&reply.to_line()).unwrap(), reply);
    }
}

#[test]
fn header_is_four_bytes_little_endian() {
    let mut wire = Vec::new();
    encode_frame(b"pr 3", &mut wire);
    assert_eq!(&wire[..HEADER_LEN], &4u32.to_le_bytes());
    assert_eq!(&wire[HEADER_LEN..], b"pr 3");
}
