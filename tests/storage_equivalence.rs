//! Conformance suite for the `GraphStorage` abstraction: a graph loaded
//! zero-copy from a memory-mapped `.vgr` file must be indistinguishable
//! from the same graph loaded through the buffered reader — for every
//! algorithm, on every system profile. The delta-varint compressed
//! backing (`.vgr` v3 / `--compress`) is held to the same bar: the
//! engine's block-decoding kernels must be bit-identical to the plain
//! slice kernels.
//!
//! "Indistinguishable" is checked at three levels:
//!
//! 1. the CSR/CSC arrays compare equal across backings;
//! 2. every algorithm's result vector is *bit-identical* (`f64::to_bits`,
//!    not epsilon-close — the kernels read the same bytes through the
//!    same code, so nothing may drift);
//! 3. the [`RunReport`]s agree on everything deterministic: iteration
//!    count, traversal choices, frontier classes, per-task edge and
//!    vertex work counts, and output sizes (wall-clock nanos are the only
//!    field allowed to differ).

mod common;

use common::assert_reports_match;
use vebo::engine::{Executor, PreparedGraph, SystemProfile};
use vebo::partition::EdgeOrder;
use vebo_algorithms::bc::bc;
use vebo_algorithms::bellman_ford::bellman_ford;
use vebo_algorithms::bfs::bfs;
use vebo_algorithms::bp::{bp, BpConfig};
use vebo_algorithms::cc::cc;
use vebo_algorithms::pagerank::{pagerank, PageRankConfig};
use vebo_algorithms::pagerank_delta::{pagerank_delta, PageRankDeltaConfig};
use vebo_algorithms::spmv::spmv;
use vebo_algorithms::{default_source, needs_weights, AlgorithmKind, RunReport};
use vebo_graph::io::{self, Format, LoadMode};
use vebo_graph::{Dataset, Graph, StorageKind};

fn profiles() -> [SystemProfile; 3] {
    [
        SystemProfile::ligra_like(),
        SystemProfile::polymer_like(),
        SystemProfile::graphgrind_like(EdgeOrder::Csr),
    ]
}

/// Runs `kind` and returns (bit-exact result digest, measurement report).
fn run(kind: AlgorithmKind, exec: &Executor, pg: &PreparedGraph) -> (Vec<u64>, RunReport) {
    let src = default_source(pg.graph());
    let f64_bits = |v: Vec<f64>| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    match kind {
        AlgorithmKind::Pr => {
            let (r, rep) = pagerank(exec, pg, &PageRankConfig::default());
            (f64_bits(r), rep)
        }
        AlgorithmKind::Prd => {
            let (r, rep) = pagerank_delta(exec, pg, &PageRankDeltaConfig::default());
            (f64_bits(r), rep)
        }
        AlgorithmKind::Bfs => {
            let (r, rep) = bfs(exec, pg, src);
            (r.iter().map(|&p| p as u64).collect(), rep)
        }
        AlgorithmKind::Bc => {
            let (r, rep) = bc(exec, pg, src);
            (f64_bits(r), rep)
        }
        AlgorithmKind::Cc => {
            let (r, rep) = cc(exec, pg);
            (r.iter().map(|&c| c as u64).collect(), rep)
        }
        AlgorithmKind::Spmv => {
            let x: Vec<f64> = (0..pg.graph().num_vertices())
                .map(|i| ((i % 17) as f64) / 17.0)
                .collect();
            let (r, rep) = spmv(exec, pg, &x);
            (f64_bits(r), rep)
        }
        AlgorithmKind::Bf => {
            let (r, rep) = bellman_ford(exec, pg, src);
            (f64_bits(r), rep)
        }
        AlgorithmKind::Bp => {
            let (r, rep) = bp(exec, pg, &BpConfig::default());
            (f64_bits(r), rep)
        }
    }
}

/// Writes `g` as a v2 `.vgr`, then loads it back through both paths.
fn load_both(g: &Graph, name: &str) -> (Graph, Graph) {
    let path = std::env::temp_dir().join(format!(
        "vebo-storage-equiv-{name}-{}.vgr",
        std::process::id()
    ));
    io::save_graph(g, &path, Format::Binary).expect("write .vgr");
    let (owned, _) = io::load_graph_with(&path, true, Some(Format::Binary), LoadMode::Buffered)
        .expect("buffered load");
    let (mapped, _) =
        io::load_graph_with(&path, true, Some(Format::Binary), LoadMode::Mmap).expect("mmap load");
    std::fs::remove_file(&path).ok();
    (owned, mapped)
}

/// Writes `g` with a compressed companion (auto-selecting `.vgr` v3),
/// then reloads it through the mmap path: the returned graph streams its
/// neighbor lists from the varint sections.
fn load_compressed(g: &Graph, name: &str) -> Graph {
    let path = std::env::temp_dir().join(format!(
        "vebo-storage-equiv-{name}-v3-{}.vgr",
        std::process::id()
    ));
    io::save_graph(&g.clone().with_compressed(), &path, Format::Binary).expect("write v3 .vgr");
    let (compressed, _) =
        io::load_graph_with(&path, true, Some(Format::Binary), LoadMode::Mmap).expect("v3 load");
    std::fs::remove_file(&path).ok();
    compressed
}

#[test]
fn mapped_and_owned_loads_expose_identical_graphs() {
    let g = Dataset::YahooLike.build(0.03).with_hash_weights(16);
    let (owned, mapped) = load_both(&g, "graphs");
    assert_eq!(owned.storage_kind(), StorageKind::Owned);
    if cfg!(all(target_endian = "little", target_pointer_width = "64")) {
        assert_eq!(mapped.storage_kind(), StorageKind::Mapped);
    }
    // Content equality crosses backings (GraphStorage PartialEq).
    assert_eq!(owned.csr(), mapped.csr());
    assert_eq!(owned.csc(), mapped.csc());
    assert_eq!(owned.csr().offsets(), g.csr().offsets());
    assert_eq!(owned.csr().targets(), g.csr().targets());
    assert_eq!(owned.csr().raw_weights(), mapped.csr().raw_weights());
    assert_eq!(owned.is_directed(), mapped.is_directed());
}

/// The acceptance matrix: all 8 algorithms x 3 system profiles produce
/// bit-identical results and identical deterministic `RunReport`s on
/// mmap-backed, owned, and compressed (`.vgr` v3) storage.
#[test]
fn all_algorithms_agree_on_mapped_owned_and_compressed_storage() {
    let plain = Dataset::YahooLike.build(0.03);
    let weighted = plain.clone().with_hash_weights(16);
    let (owned_plain, mapped_plain) = load_both(&plain, "plain");
    let (owned_weighted, mapped_weighted) = load_both(&weighted, "weighted");
    let compressed_plain = load_compressed(&plain, "plain");
    let compressed_weighted = load_compressed(&weighted, "weighted");

    for profile in profiles() {
        for kind in AlgorithmKind::ALL {
            let (owned_g, mapped_g, compressed_g) = if needs_weights(kind) {
                (&owned_weighted, &mapped_weighted, &compressed_weighted)
            } else {
                (&owned_plain, &mapped_plain, &compressed_plain)
            };
            let tag = format!("{} on {:?}", kind.code(), profile.kind);
            let exec = Executor::new(profile);
            let pg_owned = PreparedGraph::builder(owned_g.clone())
                .profile(profile)
                .build()
                .unwrap();
            let pg_mapped = PreparedGraph::builder(mapped_g.clone())
                .profile(profile)
                .build()
                .unwrap();
            let pg_compressed = PreparedGraph::builder(compressed_g.clone())
                .profile(profile)
                .build()
                .unwrap();
            assert_eq!(pg_owned.storage_kind(), StorageKind::Owned, "{tag}");
            if cfg!(all(target_endian = "little", target_pointer_width = "64")) {
                assert_eq!(pg_mapped.storage_kind(), StorageKind::Mapped, "{tag}");
            }
            assert_eq!(
                pg_compressed.storage_kind(),
                StorageKind::Compressed,
                "{tag}"
            );
            let (res_owned, rep_owned) = run(kind, &exec, &pg_owned);
            let (res_mapped, rep_mapped) = run(kind, &exec, &pg_mapped);
            let (res_compressed, rep_compressed) = run(kind, &exec, &pg_compressed);
            assert_eq!(res_owned, res_mapped, "{tag}: mapped result bits");
            assert_eq!(res_owned, res_compressed, "{tag}: compressed result bits");
            assert_reports_match(&rep_owned, &rep_mapped, &tag);
            assert_reports_match(&rep_owned, &rep_compressed, &tag);
            assert!(rep_owned.iterations > 0, "{tag}: ran nothing");
        }
    }
}

/// A compressed `.vgr` v3 file round-trips through both load paths with
/// the exact arrays of the original — weights included — and keeps its
/// compressed identity across a save/reload cycle.
#[test]
fn v3_reload_exposes_identical_graph() {
    let g = Dataset::YahooLike.build(0.03).with_hash_weights(16);
    let path = std::env::temp_dir().join(format!(
        "vebo-storage-equiv-v3rt-{}.vgr",
        std::process::id()
    ));
    io::save_graph(&g.clone().with_compressed(), &path, Format::Binary).expect("write v3");
    let (buffered, _) = io::load_graph_with(&path, true, Some(Format::Binary), LoadMode::Buffered)
        .expect("buffered v3 load");
    let (mapped, _) = io::load_graph_with(&path, true, Some(Format::Binary), LoadMode::Mmap)
        .expect("mmap v3 load");
    std::fs::remove_file(&path).ok();
    for h in [&buffered, &mapped] {
        assert_eq!(h.storage_kind(), StorageKind::Compressed);
        assert_eq!(h.csr().offsets(), g.csr().offsets());
        assert_eq!(h.csr().targets(), g.csr().targets());
        assert_eq!(h.csr().raw_weights(), g.csr().raw_weights());
        assert_eq!(h.csc().offsets(), g.csc().offsets());
        assert_eq!(h.csc().targets(), g.csc().targets());
        let stats = h.compression_stats().expect("compressed graph has stats");
        assert_eq!(stats.raw_bytes, g.num_edges() * 4);
    }
}

/// A v1 (unaligned) file read through the mmap loader exercises the copy
/// fallback and must still agree with the buffered reader, algorithm for
/// algorithm.
#[test]
fn v1_fallback_agrees_with_buffered_load() {
    let g = Dataset::LiveJournalLike.build(0.02);
    let path =
        std::env::temp_dir().join(format!("vebo-storage-equiv-v1-{}.vgr", std::process::id()));
    io::write_binary_graph_versioned(
        &g,
        std::fs::File::create(&path).expect("create v1 file"),
        io::BINARY_VERSION_V1,
    )
    .expect("write v1 .vgr");
    let (owned, _) = io::load_graph_with(&path, true, Some(Format::Binary), LoadMode::Buffered)
        .expect("buffered load");
    let (fallback, _) = io::load_graph_with(&path, true, Some(Format::Binary), LoadMode::Mmap)
        .expect("mmap load of v1");
    std::fs::remove_file(&path).ok();
    // v1 sections are unaligned: the loader must have copied.
    assert_eq!(fallback.storage_kind(), StorageKind::Owned);
    assert_eq!(owned.csr(), fallback.csr());

    let profile = SystemProfile::ligra_like();
    let exec = Executor::new(profile);
    let pg_a = PreparedGraph::new(owned, profile);
    let pg_b = PreparedGraph::new(fallback, profile);
    let (ra, _) = run(AlgorithmKind::Pr, &exec, &pg_a);
    let (rb, _) = run(AlgorithmKind::Pr, &exec, &pg_b);
    assert_eq!(ra, rb, "v1 fallback PageRank bits");
}
