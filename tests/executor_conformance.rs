//! Cross-executor conformance suite: every executor backend — sequential
//! measured, rayon-parallel, and sharded at S ∈ {1, 2, 7} — must be
//! *indistinguishable* for all 8 algorithms on all 3 system profiles.
//! The sharded serving backend joins with the same day-one coverage the
//! storage backends got in `storage_equivalence.rs`.
//!
//! "Indistinguishable" is checked at two levels:
//!
//! 1. **Bit-identical result digests.** Each algorithm's result is
//!    reduced to a canonical `Vec<u64>` digest that quotients out only
//!    the freedom the algorithm's *specification* grants (and nothing
//!    more):
//!    * PR, SPMV, BP, BF — the raw `f64` bit patterns (PR/SPMV/BP force
//!      dense traversal, so every accumulation is destination-owned; BF
//!      converges to the unique shortest-distance fixed point);
//!    * BFS — levels, not parents (which parent wins a same-level race
//!      is a legitimate tie-break; the level array is not);
//!    * CC — the final labels (the component-minimum fixed point);
//!    * BC, PRD — `f64` bits under an executor pinned to
//!      `Direction::Dense`: their sparse push interleaves atomic `f64`
//!      additions across tasks, so cross-backend bit equality is only
//!      *defined* for destination-owned accumulation. (A separate
//!      tolerance test covers their auto-direction sparse paths.)
//! 2. **Deterministic `RunReport` fields.** For the algorithms whose
//!    round structure is scheduling-independent (PR, PRD, BFS, BC,
//!    SPMV, BP), iteration counts, frontier classes, traversal choices,
//!    output sizes, task counts, per-task edge/vertex work, and socket
//!    stamps must all agree with the sequential reference; wall-clock
//!    nanos and the shard occupancy report are the only backend-specific
//!    fields. (CC and BF propagate values written *within* a round, so
//!    their round count legitimately depends on task interleaving —
//!    their digests above still may not.)
//!
//! A concurrency stress test then fires interleaved request batches at
//! one shared sharded executor and checks every response against its
//! sequential reference.
//!
//! "The graph" is a *versioned handle* throughout: two dynamic-graph
//! tests extend the matrix to mutable graphs — a compacted
//! [`DynamicGraph`] must be indistinguishable (bit-identical digests,
//! all 8 algorithms, every backend) from a static graph built from
//! scratch over the same edge set, and a mutation storm must never
//! block queries, which keep serving off their pinned epochs while
//! compactions republish new ones underneath.

mod common;

use common::assert_reports_match;
use vebo::engine::{Direction, ExecMode, Executor, PreparedGraph, RunReport, SystemProfile};
use vebo::graph::{mix64, DynamicGraph, Graph};
use vebo::partition::EdgeOrder;
use vebo_algorithms::bc::bc;
use vebo_algorithms::bellman_ford::bellman_ford;
use vebo_algorithms::bfs::{bfs, levels_from_parents};
use vebo_algorithms::bp::{bp, BpConfig};
use vebo_algorithms::cc::cc;
use vebo_algorithms::pagerank::{pagerank, PageRankConfig};
use vebo_algorithms::pagerank_delta::{pagerank_delta, PageRankDeltaConfig};
use vebo_algorithms::spmv::spmv;
use vebo_algorithms::{default_source, needs_weights, AlgorithmKind};
use vebo_bench::serve::{generate_requests, Request, ServeEngine};

fn profiles() -> [SystemProfile; 3] {
    [
        SystemProfile::ligra_like(),
        SystemProfile::polymer_like(),
        SystemProfile::graphgrind_like(EdgeOrder::Csr),
    ]
}

/// The backends under test: name, executor factory.
fn backends(profile: SystemProfile) -> Vec<(String, Executor)> {
    let mut out = vec![
        ("sequential".to_string(), Executor::new(profile)),
        (
            "rayon".to_string(),
            Executor::new(profile).with_mode(ExecMode::Parallel),
        ),
    ];
    for shards in [1usize, 2, 7] {
        out.push((
            format!("sharded-{shards}"),
            Executor::sharded(profile, shards),
        ));
    }
    out
}

/// Whether cross-backend digests are only defined under pinned dense
/// traversal (see the module docs).
fn needs_dense_pin(kind: AlgorithmKind) -> bool {
    matches!(kind, AlgorithmKind::Bc | AlgorithmKind::Prd)
}

/// Whether the algorithm's round structure (and hence its whole
/// deterministic report) is scheduling-independent.
fn report_is_deterministic(kind: AlgorithmKind) -> bool {
    !matches!(kind, AlgorithmKind::Cc | AlgorithmKind::Bf)
}

fn f64_bits(v: Vec<f64>) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Canonical bit-exact digest of one algorithm run.
fn digest(kind: AlgorithmKind, exec: &Executor, pg: &PreparedGraph) -> (Vec<u64>, RunReport) {
    let exec = if needs_dense_pin(kind) {
        exec.clone().with_direction(Direction::Dense)
    } else {
        exec.clone()
    };
    let src = default_source(pg.graph());
    match kind {
        AlgorithmKind::Pr => {
            let (r, rep) = pagerank(&exec, pg, &PageRankConfig::default());
            (f64_bits(r), rep)
        }
        AlgorithmKind::Prd => {
            let (r, rep) = pagerank_delta(&exec, pg, &PageRankDeltaConfig::default());
            (f64_bits(r), rep)
        }
        AlgorithmKind::Bfs => {
            let (r, rep) = bfs(&exec, pg, src);
            (
                levels_from_parents(&r, src)
                    .into_iter()
                    .map(u64::from)
                    .collect(),
                rep,
            )
        }
        AlgorithmKind::Bc => {
            let (r, rep) = bc(&exec, pg, src);
            (f64_bits(r), rep)
        }
        AlgorithmKind::Cc => {
            let (r, rep) = cc(&exec, pg);
            (r.into_iter().map(u64::from).collect(), rep)
        }
        AlgorithmKind::Spmv => {
            let x: Vec<f64> = (0..pg.graph().num_vertices())
                .map(|i| ((i % 17) as f64) / 17.0)
                .collect();
            let (r, rep) = spmv(&exec, pg, &x);
            (f64_bits(r), rep)
        }
        AlgorithmKind::Bf => {
            let (r, rep) = bellman_ford(&exec, pg, src);
            (f64_bits(r), rep)
        }
        AlgorithmKind::Bp => {
            let (r, rep) = bp(&exec, pg, &BpConfig::default());
            (f64_bits(r), rep)
        }
    }
}

/// The acceptance matrix: 8 algorithms x 3 profiles x 5 backends x 2
/// neighbor-list backings (plain, delta-varint compressed), all digests
/// bit-identical to the sequential reference, all deterministic report
/// fields equal where the algorithm's rounds are deterministic.
#[test]
fn all_backends_agree_on_all_algorithms_and_profiles() {
    let plain = vebo::graph::Dataset::YahooLike.build(0.02);
    let weighted = plain.clone().with_hash_weights(16);
    for profile in profiles() {
        let prepare = |g: &vebo::graph::Graph, compress: bool| {
            PreparedGraph::builder(g.clone())
                .profile(profile)
                .compress(compress)
                .build()
                .unwrap()
        };
        let pg_plain = [prepare(&plain, false), prepare(&plain, true)];
        let pg_weighted = [prepare(&weighted, false), prepare(&weighted, true)];
        for kind in AlgorithmKind::ALL {
            let pgs = if needs_weights(kind) {
                &pg_weighted
            } else {
                &pg_plain
            };
            let mut reference: Option<(Vec<u64>, RunReport)> = None;
            for (pg, backing) in pgs.iter().zip(["plain", "compressed"]) {
                for (name, exec) in backends(profile) {
                    let tag = format!(
                        "{} on {:?} via {name} ({backing})",
                        kind.code(),
                        profile.kind
                    );
                    let (dig, rep) = digest(kind, &exec, pg);
                    assert!(rep.iterations > 0, "{tag}: ran nothing");
                    // Sharded runs must carry shard reports; others must not.
                    let sharded = name.starts_with("sharded");
                    for em in &rep.edge_maps {
                        if em.tasks.is_empty() {
                            continue; // empty-frontier short circuit
                        }
                        assert_eq!(em.shards.is_some(), sharded, "{tag}: shard report");
                    }
                    match &reference {
                        None => reference = Some((dig, rep)),
                        Some((ref_dig, ref_rep)) => {
                            assert_eq!(&dig, ref_dig, "{tag}: result digest");
                            if report_is_deterministic(kind) {
                                assert_reports_match(ref_rep, &rep, &tag);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// BC and PRD under automatic direction selection take the sparse-push
/// path, where atomic f64 addition order is scheduling-dependent; the
/// backends must still agree to floating-point accumulation tolerance.
#[test]
fn racy_accumulators_agree_within_tolerance_under_auto_direction() {
    let g = vebo::graph::Dataset::YahooLike.build(0.02);
    let profile = SystemProfile::ligra_like();
    let pg = PreparedGraph::builder(g.clone())
        .profile(profile)
        .build()
        .unwrap();
    let src = default_source(&g);
    for kind in [AlgorithmKind::Bc, AlgorithmKind::Prd] {
        let run = |exec: &Executor| -> Vec<f64> {
            match kind {
                AlgorithmKind::Bc => bc(exec, &pg, src).0,
                _ => pagerank_delta(exec, &pg, &PageRankDeltaConfig::default()).0,
            }
        };
        let want = run(&Executor::new(profile));
        for (name, exec) in backends(profile) {
            let got = run(&exec);
            for (v, (a, b)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
                    "{} via {name}: vertex {v}: {a} vs {b}",
                    kind.code()
                );
            }
        }
    }
}

/// Concurrency stress: interleaved request batches against one *shared*
/// sharded executor; every response digest must equal the sequential
/// reference computed request by request.
#[test]
fn concurrent_requests_match_sequential_reference() {
    let profile = SystemProfile::polymer_like();
    let g = vebo::graph::Dataset::YahooLike.build(0.02);
    // Read-only slice of the serving mix: with concurrent request
    // threads the *order* mutations land in is legitimately racy, so
    // response-by-response digest equality is only defined for queries
    // (the mutation storm has its own stress test below).
    let requests: Vec<Request> = generate_requests(48, 99)
        .into_iter()
        .filter(|r| !r.mutates())
        .take(24)
        .collect();

    let sequential = ServeEngine::new(g.clone(), profile, Executor::new(profile));
    let reference: Vec<u64> = requests
        .iter()
        .map(|r| sequential.handle(r).digest)
        .collect();

    for shards in [2usize, 7] {
        let shared = ServeEngine::new(g.clone(), profile, Executor::sharded(profile, shards));
        for concurrency in [4usize, 8] {
            let batch = shared.run_batch(&requests, concurrency);
            for (i, resp) in batch.responses.iter().enumerate() {
                let resp = resp
                    .as_ref()
                    .expect("run_batch without a stop flag completes");
                assert_eq!(
                    resp.digest,
                    reference[i],
                    "request {i} ({}) with {shards} shards, {concurrency} request threads",
                    requests[i].code()
                );
            }
        }
        // The shared pool really was exercised concurrently.
        let m = shared.metrics();
        assert!(m.ops > 0);
        assert_eq!(m.request_nanos.len(), 2 * requests.len());
    }
}

/// The mutable-graph acceptance matrix: a [`DynamicGraph`] seeded with
/// half the target edge set, grown to the full set through the delta
/// log (including a delete/re-insert churn cycle spanning a
/// compaction), must — once compacted — produce digests bit-identical
/// to a from-scratch static build for all 8 algorithms on every
/// backend. Weighted kinds attach the same hash weights to both sides.
#[test]
fn compacted_dynamic_graph_matches_static_digests() {
    let profile = SystemProfile::polymer_like();
    let base = vebo::graph::Dataset::YahooLike.build(0.02);
    let directed = base.is_directed();
    let n = base.num_vertices();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for u in 0..n as u32 {
        for &v in base.out_neighbors(u) {
            if directed || u <= v {
                edges.push((u, v));
            }
        }
    }
    // The serving clamp semantics are set semantics; dedup so the
    // streamed half cannot collide with seed-half duplicates.
    edges.sort_unstable();
    edges.dedup();
    let target = Graph::from_edges(n, &edges, directed);

    let half = edges.len() / 2;
    let dg = DynamicGraph::new(Graph::from_edges(n, &edges[..half], directed));
    for &(u, v) in &edges[half..] {
        dg.insert_edge(u, v).unwrap();
    }
    // Churn: delete every 7th edge, compact mid-stream, re-insert.
    for &(u, v) in edges.iter().step_by(7) {
        dg.delete_edge(u, v).unwrap();
    }
    dg.compact();
    for &(u, v) in edges.iter().step_by(7) {
        dg.insert_edge(u, v).unwrap();
    }
    dg.compact();
    assert!(!dg.is_dirty());
    assert_eq!(dg.epoch(), 2, "the handle is versioned");

    let plain_dyn = (*dg.snapshot()).clone();
    let weighted_static = target.clone().with_hash_weights(16);
    let weighted_dyn = plain_dyn.clone().with_hash_weights(16);
    for kind in AlgorithmKind::ALL {
        let (gs, gd) = if needs_weights(kind) {
            (&weighted_static, &weighted_dyn)
        } else {
            (&target, &plain_dyn)
        };
        let pg_static = PreparedGraph::builder(gs.clone())
            .profile(profile)
            .build()
            .unwrap();
        let pg_dyn = PreparedGraph::builder(gd.clone())
            .profile(profile)
            .build()
            .unwrap();
        let (want, _) = digest(kind, &Executor::new(profile), &pg_static);
        for (name, exec) in backends(profile) {
            let (got, _) = digest(kind, &exec, &pg_dyn);
            assert_eq!(
                got,
                want,
                "{} via {name}: compacted dynamic != static",
                kind.code()
            );
        }
    }
}

/// The background-compaction acceptance criterion: the same request
/// script driven through an engine whose compaction-tripping mutations
/// *wait* for the cycle (synchronous scheduling) and through one whose
/// mutations return immediately while the compactor merges behind them
/// must answer **bit-identical digests for every request** — including
/// queries served mid-stream off dirty epochs whose delta overlay has
/// not been merged yet — and both must settle on byte-identical
/// adjacency once drained and compacted.
#[test]
fn background_compaction_matches_synchronous_digests() {
    let profile = SystemProfile::polymer_like();
    let g = vebo::graph::Dataset::YahooLike.build(0.02);
    let requests = generate_requests(96, 5);

    let mut sync_engine = ServeEngine::new(g.clone(), profile, Executor::new(profile));
    sync_engine.configure_compaction(4, 0.25);
    let mut async_engine = ServeEngine::new(g, profile, Executor::new(profile));
    async_engine.configure_compaction(4, 0.25);
    async_engine.set_compaction_blocking(false);

    for (i, req) in requests.iter().enumerate() {
        let want = sync_engine.handle(req);
        let got = async_engine.handle(req);
        assert_eq!(
            got.digest,
            want.digest,
            "request {i} ({}): async compaction changed a served digest",
            req.to_line()
        );
    }

    // Drained and fully compacted, both engines hold the same graph,
    // byte for byte — scheduling moved the merges, not their result.
    async_engine.drain_compaction();
    sync_engine.compact_now();
    async_engine.compact_now();
    let a = sync_engine.dynamic().snapshot();
    let b = async_engine.dynamic().snapshot();
    assert_eq!(a.csr(), b.csr(), "CSR diverged under background compaction");
    assert_eq!(a.csc(), b.csc(), "CSC diverged under background compaction");
    assert!(!sync_engine.dynamic().is_dirty());
    assert!(!async_engine.dynamic().is_dirty());
    // The synchronous engine's schedule is exact: every 4th mutation
    // waited for its cycle (plus the final forced one).
    let muts = requests.iter().filter(|r| r.mutates()).count() as u64;
    assert_eq!(sync_engine.metrics().compactions, muts / 4 + 1);
}

/// The never-block acceptance criterion: one thread hammers mutations
/// (forcing frequent compactions and label recomputes) while query
/// threads keep serving off the shared sharded pool. Every query runs
/// against its pinned epoch; none can deadlock or observe a torn state,
/// and epochs must visibly advance while the queries run.
#[test]
fn pinned_epochs_stay_readable_during_mutation_storm() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let profile = SystemProfile::polymer_like();
    let g = vebo::graph::Dataset::YahooLike.build(0.02);
    let n = g.num_vertices() as u32;
    let mut engine = ServeEngine::new(g, profile, Executor::sharded(profile, 3));
    engine.configure_compaction(4, 0.25);
    let engine = &engine;
    let stop = &AtomicBool::new(false);
    let served = &AtomicU64::new(0);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut x = 123u64;
            for _ in 0..120 {
                x = mix64(x);
                let u = (x >> 32) as u32 % n;
                x = mix64(x);
                let v = (x >> 32) as u32 % n;
                if x.is_multiple_of(3) {
                    engine.handle(&Request::DelEdge { u, v });
                } else {
                    engine.handle(&Request::AddEdge { u, v });
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        for t in 0..3u32 {
            scope.spawn(move || loop {
                engine.handle(&Request::Bfs { seed: t * 7 });
                engine.handle(&Request::Label { v: t * 13 });
                served.fetch_add(2, Ordering::Relaxed);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            });
        }
    });
    assert!(served.load(Ordering::Relaxed) >= 6, "queries made progress");
    let m = engine.metrics();
    assert_eq!(m.compactions, 30, "120 mutations at compact-every 4");
    assert!(engine.dynamic().epoch() >= 1);
    assert_eq!(engine.prepared().epoch(), engine.dynamic().epoch());
    assert!(!engine.dynamic().is_dirty());
}

/// Direct engine-level interleaving (no serving layer): many threads run
/// different algorithms through clones of one sharded executor at once.
#[test]
fn interleaved_algorithms_share_one_pool() {
    let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
    let g = vebo::graph::Dataset::YahooLike.build(0.02);
    let pg = PreparedGraph::builder(g.clone())
        .profile(profile)
        .build()
        .unwrap();
    let src = default_source(&g);
    let seq = Executor::new(profile);
    let want_levels = levels_from_parents(&bfs(&seq, &pg, src).0, src);
    let (want_labels, _) = cc(&seq, &pg);
    let want_ranks = pagerank(&seq, &pg, &PageRankConfig::default()).0;

    let exec = Executor::sharded(profile, 3);
    let (exec, pg) = (&exec, &pg);
    let (want_levels, want_labels, want_ranks) = (&want_levels, &want_labels, &want_ranks);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(move || {
                let got = levels_from_parents(&bfs(exec, pg, src).0, src);
                assert_eq!(&got, want_levels, "bfs under interleaving");
            });
            scope.spawn(move || {
                let (got, _) = cc(exec, pg);
                assert_eq!(&got, want_labels, "cc under interleaving");
            });
            scope.spawn(move || {
                let got = pagerank(exec, pg, &PageRankConfig::default()).0;
                let bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
                let want_bits: Vec<u64> = want_ranks.iter().map(|x| x.to_bits()).collect();
                assert_eq!(bits, want_bits, "pagerank under interleaving");
            });
        }
    });
}
