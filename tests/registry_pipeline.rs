//! Integration tests for the registry-driven reorder pipeline:
//! resolving every ordering by name, running it through the (parallel)
//! relabeling path, and checking that VEBO's balance guarantees are
//! invariant to whichever ordering the graph arrived in.

use proptest::prelude::*;
use vebo::core::balance::BalanceReport;
use vebo::core::Vebo;
use vebo::graph::gen::powerlaw::{zipf_directed, ZipfGraphConfig};
use vebo::graph::{Graph, ParMode};
use vebo::{chunked_balance_report, OrderingRegistry, ORDERING_NAMES};

/// A directed power-law (Zipf in-degree) graph satisfying the theorem
/// preconditions at the chosen partition counts.
fn power_law(seed: u64) -> Graph {
    zipf_directed(&ZipfGraphConfig {
        num_vertices: 4000,
        num_ranks: 32,
        s: 1.0,
        out_skew: 1.0,
        zero_out_fraction: 0.0,
        shuffle_ids: true,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// VEBO's optimality (edge and vertex imbalance <= 1) holds no matter
    /// which registry ordering the graph was previously reordered with:
    /// the guarantee depends only on the degree distribution, which every
    /// relabeling preserves. Exercises name resolution, the (parallel)
    /// apply_graph path, and BalanceReport in one sweep.
    #[test]
    fn balance_invariants_hold_for_every_registry_ordering(
        seed in any::<u64>(),
        p in 2usize..16,
    ) {
        let g = power_law(seed);
        for (name, ordering) in OrderingRegistry::new(p).all() {
            let h = ordering.compute(&g).apply_graph(&g);
            prop_assert_eq!(h.num_edges(), g.num_edges(), "{}", name);
            let report = BalanceReport::from_result(&Vebo::new(p).compute_full(&h));
            prop_assert!(
                report.edge_imbalance <= 1,
                "{} then VEBO @ P={}: edge imbalance {}",
                name, p, report.edge_imbalance
            );
            prop_assert!(
                report.vertex_imbalance <= 1,
                "{} then VEBO @ P={}: vertex imbalance {}",
                name, p, report.vertex_imbalance
            );
        }
    }

    /// The blocked variant's parallel scatter stages produce exactly the
    /// sequential result, permutation included.
    #[test]
    fn vebo_parallel_scatter_matches_sequential(seed in any::<u64>(), p in 1usize..24) {
        let g = power_law(seed);
        let seq = Vebo::new(p).with_mode(ParMode::Sequential).compute_full(&g);
        let par = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| Vebo::new(p).with_mode(ParMode::Parallel).compute_full(&g));
        prop_assert_eq!(seq.permutation.as_slice(), par.permutation.as_slice());
        prop_assert_eq!(seq.assignment, par.assignment);
        prop_assert_eq!(seq.vertex_counts, par.vertex_counts);
        prop_assert_eq!(seq.edge_counts, par.edge_counts);
        prop_assert_eq!(seq.starts, par.starts);
    }
}

/// The CLI's chunked balance report recovers VEBO's optimal balance on a
/// VEBO-ordered graph (the Figure 2 pipeline: reorder, then Algorithm 1).
#[test]
fn chunked_report_recovers_vebo_balance() {
    let g = power_law(3);
    let p = 8;
    let full = Vebo::new(p).compute_full(&g);
    let h = full.permutation.apply_graph(&g);
    let report = chunked_balance_report(&h, p);
    let direct = BalanceReport::from_result(&full);
    assert!(
        report.edge_imbalance <= direct.edge_imbalance + 1,
        "chunked {} vs direct {}",
        report.edge_imbalance,
        direct.edge_imbalance
    );
    assert_eq!(report.vertex_counts.iter().sum::<usize>(), g.num_vertices());
    assert_eq!(report.edge_counts.iter().sum::<u64>(), g.num_edges() as u64);
}

/// The roster is complete and stable: the seven paper orderings plus the
/// BOBA baseline, resolvable case-insensitively, with unknown names
/// rejected.
#[test]
fn roster_is_complete() {
    assert_eq!(
        ORDERING_NAMES,
        [
            "vebo",
            "rcm",
            "gorder",
            "hightolow",
            "random",
            "slashburn",
            "metis",
            "boba"
        ]
    );
    let reg = OrderingRegistry::new(4);
    for name in ORDERING_NAMES {
        assert!(reg.resolve(name).is_some(), "{name}");
        assert!(reg.resolve(&name.to_uppercase()).is_some(), "{name}");
    }
    assert!(reg.resolve("degree").is_none());
}
