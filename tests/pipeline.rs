//! End-to-end integration tests: dataset -> ordering -> partitioning ->
//! engine -> algorithm, across crates.

use vebo::core::Vebo;
use vebo::engine::{Executor, PreparedGraph, SystemProfile};
use vebo::graph::{Dataset, VertexOrdering};
use vebo::partition::EdgeOrder;
use vebo_algorithms::bfs::{bfs, bfs_reference, levels_from_parents};
use vebo_algorithms::cc::{cc, cc_reference};
use vebo_algorithms::pagerank::{pagerank, pagerank_reference, PageRankConfig};
use vebo_algorithms::{default_source, needs_weights, run_algorithm, AlgorithmKind};
use vebo_baselines::{Gorder, RandomOrder, Rcm};
use vebo_bench::{ordered_with_starts, OrderingKind};

/// Algorithm results must be invariant under any vertex reordering
/// (permuted appropriately) — the reordered graph is isomorphic.
#[test]
fn pagerank_invariant_under_every_ordering() {
    let g = Dataset::YahooLike.build(0.05);
    let cfg = PageRankConfig {
        iterations: 5,
        ..Default::default()
    };
    let want = pagerank_reference(&g, &cfg);
    let orderings: Vec<Box<dyn VertexOrdering>> = vec![
        Box::new(Vebo::new(48)),
        Box::new(Rcm),
        Box::new(Gorder::new().with_hub_cap(32)),
        Box::new(RandomOrder::new(3)),
    ];
    for ord in orderings {
        let perm = ord.compute(&g);
        let h = perm.apply_graph(&g);
        let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
        let pg = PreparedGraph::builder(h).profile(profile).build().unwrap();
        let (ranks, _) = pagerank(&Executor::new(profile), &pg, &cfg);
        for v in g.vertices() {
            let diff = (ranks[perm.new_id(v) as usize] - want[v as usize]).abs();
            assert!(diff < 1e-9, "{}: vertex {v} differs by {diff}", ord.name());
        }
    }
}

#[test]
fn bfs_levels_invariant_under_vebo() {
    let g = Dataset::LiveJournalLike.build(0.05);
    let src = default_source(&g);
    let want = bfs_reference(&g, src);
    let perm = Vebo::new(384).compute(&g);
    let h = perm.apply_graph(&g);
    let profile = SystemProfile::polymer_like();
    let pg = PreparedGraph::builder(h).profile(profile).build().unwrap();
    let (parents, _) = bfs(&Executor::new(profile), &pg, perm.new_id(src));
    let levels = levels_from_parents(&parents, perm.new_id(src));
    for v in g.vertices() {
        assert_eq!(
            levels[perm.new_id(v) as usize],
            want[v as usize],
            "vertex {v}"
        );
    }
}

#[test]
fn cc_labels_refine_identically_across_orderings() {
    // Component *partitions* (which vertices share a component) are
    // ordering-invariant even though label values change.
    let g = Dataset::UsaRoadLike.build(0.05);
    let want = cc_reference(&g);
    let perm = Vebo::new(48).compute(&g);
    let h = perm.apply_graph(&g);
    let profile = SystemProfile::ligra_like();
    let pg = PreparedGraph::builder(h).profile(profile).build().unwrap();
    let (labels, _) = cc(&Executor::new(profile), &pg);
    for u in g.vertices() {
        for v in (u + 1..g.num_vertices() as u32).step_by(97) {
            let same_ref = want[u as usize] == want[v as usize];
            let same_got = labels[perm.new_id(u) as usize] == labels[perm.new_id(v) as usize];
            assert_eq!(same_ref, same_got, "pair ({u}, {v})");
        }
    }
}

/// The full Table III pipeline runs for every (algorithm, system) pair
/// with exact VEBO boundaries.
#[test]
fn every_algorithm_runs_with_exact_vebo_bounds() {
    let base = Dataset::TwitterLike.build(0.05);
    for system in [
        SystemProfile::ligra_like(),
        SystemProfile::polymer_like(),
        SystemProfile::graphgrind_like(EdgeOrder::Csr),
    ] {
        let p = if system.kind == vebo::engine::SystemKind::PolymerLike {
            4
        } else {
            384
        };
        let (h, starts, _) = ordered_with_starts(&base, OrderingKind::Vebo, p);
        for kind in AlgorithmKind::ALL {
            let g = if needs_weights(kind) {
                h.clone().with_hash_weights(16)
            } else {
                h.clone()
            };
            let pg = PreparedGraph::builder(g)
                .profile(system)
                .vebo_starts(starts.as_deref())
                .build()
                .expect("VEBO boundaries are valid");
            let report = run_algorithm(kind, &Executor::new(system), &pg);
            assert!(
                report.total_edges() > 0,
                "{} on {:?}",
                kind.code(),
                system.kind
            );
        }
    }
}

/// VEBO's exact boundaries give (near-)perfectly edge-balanced GraphGrind
/// tasks, while the original order does not.
#[test]
fn vebo_bounds_balance_graphgrind_tasks() {
    // P = 48 keeps the Theorem 1 preconditions satisfied at this scale
    // (P < N and |E| >= N (P - 1)); the paper's P = 384 requires the
    // full-size graphs.
    let g = Dataset::TwitterLike.build(0.1);
    let (h, starts, _) = ordered_with_starts(&g, OrderingKind::Vebo, 48);
    let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr).with_partitions(48);
    let pg = PreparedGraph::builder(h)
        .profile(profile)
        .vebo_starts(starts.as_deref())
        .build()
        .expect("VEBO boundaries are valid");
    let coo = pg.coo().unwrap();
    let lens: Vec<usize> = (0..coo.num_partitions())
        .map(|p| coo.partition_len(p))
        .collect();
    let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
    assert!(max - min <= 1, "VEBO task edges spread {min}..{max}");

    let pg0 = PreparedGraph::new(
        g,
        SystemProfile::graphgrind_like(EdgeOrder::Csr).with_partitions(48),
    );
    let coo0 = pg0.coo().unwrap();
    let lens0: Vec<usize> = (0..coo0.num_partitions())
        .map(|p| coo0.partition_len(p))
        .collect();
    let (min0, max0) = (lens0.iter().min().unwrap(), lens0.iter().max().unwrap());
    assert!(
        max0 - min0 > 1,
        "original order should not be perfectly balanced"
    );
}
