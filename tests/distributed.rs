//! Cross-crate integration tests for the §VII distributed study: VEBO
//! (vebo-core) feeding the cluster simulator (vebo-distributed), with
//! partition quality measured by vebo-partition.

use vebo::distributed::{evaluate, ClusterConfig, GreedyVertexCut, Strategy};
use vebo::graph::degree::vertices_by_decreasing_in_degree;
use vebo::graph::{Dataset, VertexId};
use vebo_algorithms::default_source;

fn cluster(workers: usize) -> ClusterConfig {
    ClusterConfig {
        workers,
        ..Default::default()
    }
}

#[test]
fn vebo_chunking_is_perfectly_balanced_on_cluster_workers() {
    // Theorem 1/2 carried through the whole pipeline: realize() applies
    // VEBO, chunks on its boundaries, and both imbalance ratios collapse
    // to ~1 at cluster scale (16 workers) on every power-law dataset.
    for dataset in [Dataset::TwitterLike, Dataset::Rmat27Like, Dataset::PowerLaw] {
        let g = dataset.build(0.2);
        let (h, asg) = Strategy::ChunkVebo.realize(&g, 16);
        let q = asg.quality(&h);
        assert!(
            q.edge_imbalance < 1.001,
            "{}: edge imb {}",
            dataset.name(),
            q.edge_imbalance
        );
        assert!(
            q.vertex_imbalance < 1.01,
            "{}: vert imb {}",
            dataset.name(),
            q.vertex_imbalance
        );
    }
}

#[test]
fn vebo_wins_pagerank_totals_on_power_law_cluster() {
    // The §VII answer, asserted: on scale-free graphs the VEBO chunking
    // beats the original chunking on total simulated time (compute win,
    // no replication penalty — both are chunked by destination).
    let g = Dataset::TwitterLike.build(0.2);
    let cfg = cluster(16);
    let src = default_source(&g);
    let orig = evaluate(Strategy::ChunkOriginal, &g, &cfg, 10, src).unwrap();
    let vebo = evaluate(Strategy::ChunkVebo, &g, &cfg, 10, src).unwrap();
    assert!(
        vebo.pr_total < orig.pr_total,
        "VEBO {} vs original {}",
        vebo.pr_total,
        orig.pr_total
    );
    // And the replication increase §VII worries about stays small (<10%).
    assert!(
        vebo.replication_factor < orig.replication_factor * 1.10,
        "replication grew too much: {} vs {}",
        vebo.replication_factor,
        orig.replication_factor
    );
}

#[test]
fn road_network_prefers_cut_minimization() {
    // The §V-B story on the cluster: VEBO breaks the road network's
    // natural locality, so a cut-minimizing partitioner beats it there.
    let g = Dataset::UsaRoadLike.build(0.2);
    let cfg = cluster(16);
    let src = default_source(&g);
    let vebo = evaluate(Strategy::ChunkVebo, &g, &cfg, 10, src).unwrap();
    let ml = evaluate(Strategy::Multilevel, &g, &cfg, 10, src).unwrap();
    assert!(
        ml.pr_comm < vebo.pr_comm,
        "multilevel comm {} vs VEBO {}",
        ml.pr_comm,
        vebo.pr_comm
    );
    assert!(
        ml.pr_total < vebo.pr_total,
        "multilevel {} vs VEBO {}",
        ml.pr_total,
        vebo.pr_total
    );
}

#[test]
fn bfs_supersteps_equal_eccentricity_regardless_of_strategy() {
    // Partitioning must never change the BFS level structure, only its
    // cost; every strategy sees the same number of supersteps.
    let g = Dataset::LiveJournalLike.build(0.1);
    let cfg = cluster(8);
    let src = default_source(&g);
    let steps: Vec<usize> = Strategy::ALL
        .iter()
        .map(|&s| evaluate(s, &g, &cfg, 1, src).unwrap().bfs_supersteps)
        .collect();
    assert!(steps.windows(2).all(|w| w[0] == w[1]), "{steps:?}");
}

#[test]
fn degree_descending_stream_reduces_replication_on_twitter() {
    // §VII's conjecture, pinned on the dataset where it holds cleanly
    // (and with the balance guard that excludes the degenerate collapse).
    let g = Dataset::TwitterLike.build(0.2);
    let natural = GreedyVertexCut.place(&g, 16).unwrap();
    let order: Vec<VertexId> = vertices_by_decreasing_in_degree(&g);
    let sorted = GreedyVertexCut
        .place_with_source_order(&g, 16, &order)
        .unwrap();
    assert!(
        sorted.replication_factor() < natural.replication_factor(),
        "sorted {} natural {}",
        sorted.replication_factor(),
        natural.replication_factor()
    );
    assert!(
        sorted.load_imbalance() < 4.0,
        "degenerate collapse: {}",
        sorted.load_imbalance()
    );
}

#[test]
fn cluster_sizes_scale_compute_down() {
    // Doubling workers should not increase the PageRank compute makespan
    // under VEBO chunking (near-perfect strong scaling of the balanced
    // partition).
    let g = Dataset::FriendsterLike.build(0.1);
    let src = default_source(&g);
    let t8 = evaluate(Strategy::ChunkVebo, &g, &cluster(8), 5, src)
        .unwrap()
        .pr_compute;
    let t16 = evaluate(Strategy::ChunkVebo, &g, &cluster(16), 5, src)
        .unwrap()
        .pr_compute;
    assert!(t16 < t8, "8 workers {t8}, 16 workers {t16}");
    // Balanced work halves to within 10%.
    assert!(
        t16 > t8 * 0.45 && t16 < t8 * 0.6,
        "scaling ratio {}",
        t16 / t8
    );
}
