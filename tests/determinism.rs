//! Determinism: the whole pipeline is reproducible run-to-run (datasets,
//! orderings, partitioning, algorithm results, simulator statistics).

use vebo::core::Vebo;
use vebo::engine::{Executor, PreparedGraph, SystemProfile};
use vebo::graph::Dataset;
use vebo::partition::numa::NumaTopology;
use vebo::partition::{EdgeOrder, PartitionBounds};
use vebo::perfmodel::{simulate_edgemap_pull, NumaLayout, SimConfig};
use vebo_algorithms::pagerank::{pagerank, PageRankConfig};

#[test]
fn datasets_are_reproducible() {
    for d in Dataset::ALL {
        let a = d.build(0.05);
        let b = d.build(0.05);
        assert_eq!(a.csr().offsets(), b.csr().offsets(), "{}", d.name());
        assert_eq!(a.csr().targets(), b.csr().targets(), "{}", d.name());
    }
}

#[test]
fn vebo_is_deterministic() {
    let g = Dataset::Rmat27Like.build(0.05);
    let a = Vebo::new(384).compute_full(&g);
    let b = Vebo::new(384).compute_full(&g);
    assert_eq!(a.permutation.as_slice(), b.permutation.as_slice());
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.edge_counts, b.edge_counts);
}

#[test]
fn pagerank_bits_are_reproducible() {
    // Sequential (measured) execution applies updates in a fixed order,
    // so even floating-point results are bit-identical.
    let g = Dataset::YahooLike.build(0.05);
    let profile = SystemProfile::graphgrind_like(EdgeOrder::Hilbert);
    let pg = PreparedGraph::builder(g).profile(profile).build().unwrap();
    let exec = Executor::new(profile);
    let cfg = PageRankConfig::default();
    let (a, _) = pagerank(&exec, &pg, &cfg);
    let (b, _) = pagerank(&exec, &pg, &cfg);
    assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
}

#[test]
fn perfmodel_statistics_are_deterministic() {
    let g = Dataset::TwitterLike.build(0.05);
    let layout = NumaLayout::new(
        PartitionBounds::edge_balanced(&g, 48),
        NumaTopology::default(),
    );
    let a = simulate_edgemap_pull(&g, &layout, &SimConfig::default());
    let b = simulate_edgemap_pull(&g, &layout, &SimConfig::default());
    assert_eq!(a, b);
}

#[test]
fn work_model_makespans_are_deterministic() {
    use vebo::engine::Scheduling;
    use vebo_algorithms::{run_algorithm, AlgorithmKind};
    let g = Dataset::LiveJournalLike.build(0.05);
    let run = || {
        let profile = SystemProfile::polymer_like();
        let pg = PreparedGraph::builder(g.clone())
            .profile(profile)
            .build()
            .unwrap();
        let report = run_algorithm(AlgorithmKind::Bfs, &Executor::new(profile), &pg);
        report.simulated_work(48, Scheduling::Static)
    };
    assert_eq!(run(), run());
}
