//! Cross-ordering integration tests: every ordering in the
//! [`vebo::OrderingRegistry`] roster must compose with the full pipeline
//! exactly like the paper's comparators, and the load-balance ranking of
//! Table III must hold against the extension orderings too.

use vebo::core::Vebo;
use vebo::engine::{Executor, PreparedGraph, Scheduling, SystemProfile};
use vebo::graph::{Dataset, VertexOrdering};
use vebo::partition::EdgeOrder;
use vebo::OrderingRegistry;
use vebo_algorithms::pagerank::{pagerank, pagerank_reference, PageRankConfig};
use vebo_baselines::SlashBurn;

/// PageRank values must be invariant (modulo the id map) under every
/// registry ordering — the reordered graph is isomorphic.
#[test]
fn pagerank_invariant_under_every_registry_ordering() {
    let g = Dataset::YahooLike.build(0.05);
    let cfg = PageRankConfig {
        iterations: 5,
        ..Default::default()
    };
    let want = pagerank_reference(&g, &cfg);
    for (name, ord) in OrderingRegistry::new(16).all() {
        let perm = ord.compute(&g);
        let h = perm.apply_graph(&g);
        let profile = SystemProfile::ligra_like();
        let pg = PreparedGraph::builder(h).profile(profile).build().unwrap();
        let (ranks, _) = pagerank(&Executor::new(profile), &pg, &cfg);
        for v in g.vertices() {
            let got = ranks[perm.new_id(v) as usize];
            assert!(
                (got - want[v as usize]).abs() < 1e-6,
                "{name}: vertex {} rank {} want {}",
                v,
                got,
                want[v as usize]
            );
        }
    }
}

/// On a static-scheduled profile and a power-law graph, VEBO's simulated
/// makespan (work model) beats the structure-optimizing orderings —
/// Table III's ranking extended to SlashBurn and METIS-like.
#[test]
fn vebo_beats_extension_orderings_on_static_profile() {
    let g = Dataset::TwitterLike.build(0.1);
    let threads = 48;
    let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
    let cfg = PageRankConfig {
        iterations: 3,
        ..Default::default()
    };

    let run = |h: vebo::graph::Graph, starts: Option<Vec<usize>>| -> f64 {
        let pg = PreparedGraph::builder(h)
            .profile(profile)
            .vebo_starts(starts)
            .build()
            .expect("VEBO boundaries are valid");
        let (_, report) = pagerank(&Executor::new(profile), &pg, &cfg);
        report.simulated_work(threads, Scheduling::Static)
    };

    let vebo_res = Vebo::new(384).compute_full(&g);
    let vebo_cost = run(
        vebo_res.permutation.apply_graph(&g),
        Some(vebo_res.starts.clone()),
    );

    let registry = OrderingRegistry::new(384);
    for name in ["slashburn", "metis"] {
        let ord = registry.resolve(name).unwrap();
        let h = ord.compute(&g).apply_graph(&g);
        let cost = run(h, None);
        assert!(
            vebo_cost <= cost * 1.01,
            "VEBO {vebo_cost} should not lose to {name} {cost} on static scheduling"
        );
    }
}

/// The METIS-like ordering really delivers contiguous low-cut blocks:
/// chunking the relabeled graph at the partitioner's boundaries cuts far
/// fewer edges than chunking the original road graph randomly permuted.
#[test]
fn metis_relabeling_preserves_cut_quality_through_chunking() {
    use vebo::partition::{Multilevel, VertexAssignment};
    let g = Dataset::UsaRoadLike.build(0.1);
    let p = 8;
    let ml = Multilevel::new().partition(&g, p);
    let before = ml.quality(&g);
    let (perm, bounds) = ml.relabeling();
    let h = perm.apply_graph(&g);
    let after = VertexAssignment::from_bounds(&bounds).quality(&h);
    assert_eq!(before.cut_edges, after.cut_edges);
    // Sanity: the multilevel cut is far below a blind chunking of a
    // random permutation (locality destroyed).
    let shuffled = vebo_baselines::RandomOrder::new(1)
        .compute(&g)
        .apply_graph(&g);
    let blind = VertexAssignment::from_bounds(&vebo::partition::PartitionBounds::vertex_balanced(
        shuffled.num_vertices(),
        p,
    ))
    .quality(&shuffled);
    assert!(
        after.cut_edges * 3 < blind.cut_edges,
        "{} vs {}",
        after.cut_edges,
        blind.cut_edges
    );
}

/// SlashBurn concentrates edges on low ids: the top-1% id block of the
/// reordered power-law graph touches several times the arc mass the same
/// block touches in the original order (the compression property the
/// ordering was designed for).
#[test]
fn slashburn_concentrates_adjacency_mass() {
    let g = Dataset::TwitterLike.build(0.1);
    let top = (g.num_vertices() / 100).max(1);
    let mass = |h: &vebo::graph::Graph| -> usize {
        (0..top)
            .map(|v| h.in_degree(v as u32) + h.out_degree(v as u32))
            .sum()
    };
    let original = mass(&g);
    let h = SlashBurn::default().compute(&g).apply_graph(&g);
    let burned = mass(&h);
    assert!(
        burned > 3 * original,
        "top-1% ids: SlashBurn touches {burned} arc endpoints, original {original}"
    );
}
