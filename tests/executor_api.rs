//! Integration tests for the executor-centric engine API: execution
//! policy (sequential vs parallel, NUMA placement on vs off) must never
//! change algorithm results, on any profile, for all eight algorithms —
//! and statically scheduled executors must report a socket for every
//! task.

use proptest::prelude::*;
use vebo::engine::{ExecMode, Executor, PreparedGraph, SystemProfile};
use vebo::partition::EdgeOrder;
use vebo_algorithms::bc::bc;
use vebo_algorithms::bellman_ford::bellman_ford;
use vebo_algorithms::bfs::{bfs, levels_from_parents};
use vebo_algorithms::bp::{bp, BpConfig};
use vebo_algorithms::cc::cc;
use vebo_algorithms::pagerank::{pagerank, PageRankConfig};
use vebo_algorithms::pagerank_delta::{pagerank_delta, PageRankDeltaConfig};
use vebo_algorithms::spmv::spmv;
use vebo_algorithms::{default_source, needs_weights, AlgorithmKind};
use vebo_graph::graph::mix64;
use vebo_graph::{Graph, VertexId};

fn profiles() -> [SystemProfile; 3] {
    [
        SystemProfile::ligra_like(),
        SystemProfile::polymer_like(),
        SystemProfile::graphgrind_like(EdgeOrder::Csr),
    ]
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40, 4usize..200, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut x = seed;
        let mut next = || {
            x = mix64(x);
            x
        };
        let edges: Vec<(VertexId, VertexId)> = (0..m)
            .map(|_| {
                (
                    (next() % n as u64) as VertexId,
                    (next() % n as u64) as VertexId,
                )
            })
            .collect();
        Graph::from_edges(n, &edges, true)
    })
}

/// A floating-point digest of one algorithm's result under `exec`.
/// BFS parents are reduced to levels (parent *choice* is a legitimate
/// tie-break, levels are not); everything else is the result vector.
fn digest(kind: AlgorithmKind, exec: &Executor, pg: &PreparedGraph) -> Vec<f64> {
    let src = default_source(pg.graph());
    match kind {
        AlgorithmKind::Pr => pagerank(exec, pg, &PageRankConfig::default()).0,
        AlgorithmKind::Prd => pagerank_delta(exec, pg, &PageRankDeltaConfig::default()).0,
        AlgorithmKind::Bfs => levels_from_parents(&bfs(exec, pg, src).0, src)
            .into_iter()
            .map(f64::from)
            .collect(),
        AlgorithmKind::Bc => bc(exec, pg, src).0,
        AlgorithmKind::Cc => cc(exec, pg).0.into_iter().map(f64::from).collect(),
        AlgorithmKind::Spmv => {
            let x: Vec<f64> = (0..pg.graph().num_vertices())
                .map(|i| ((i % 17) as f64) / 17.0)
                .collect();
            spmv(exec, pg, &x).0
        }
        AlgorithmKind::Bf => bellman_ford(exec, pg, src).0,
        AlgorithmKind::Bp => bp(exec, pg, &BpConfig::default()).0,
    }
}

fn assert_digests_agree(a: &[f64], b: &[f64], tag: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "{}: lengths differ", tag);
    for (v, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert!(
            (x.is_infinite() && y.is_infinite() && x.signum() == y.signum())
                || (x - y).abs() < 1e-6,
            "{}: vertex {} differs: {} vs {}",
            tag,
            v,
            x,
            y
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sequential and parallel executors produce the same results for
    /// all 8 algorithms x 3 system profiles.
    #[test]
    fn sequential_matches_parallel_for_every_algorithm(g in arb_graph()) {
        for profile in profiles() {
            for kind in AlgorithmKind::ALL {
                let g = if needs_weights(kind) {
                    g.clone().with_hash_weights(8)
                } else {
                    g.clone()
                };
                let pg = PreparedGraph::builder(g).profile(profile).build().unwrap();
                let seq = digest(kind, &Executor::new(profile), &pg);
                let par = digest(
                    kind,
                    &Executor::new(profile).with_mode(ExecMode::Parallel),
                    &pg,
                );
                assert_digests_agree(
                    &seq,
                    &par,
                    &format!("{} on {:?}", kind.code(), profile.kind),
                )?;
            }
        }
    }

    /// NUMA placement reorders task execution (socket-major interleave)
    /// but never changes results, for all 8 algorithms on the statically
    /// scheduled profiles.
    #[test]
    fn numa_placement_preserves_results_for_every_algorithm(g in arb_graph()) {
        for profile in [
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Csr),
        ] {
            for kind in AlgorithmKind::ALL {
                let g = if needs_weights(kind) {
                    g.clone().with_hash_weights(8)
                } else {
                    g.clone()
                };
                let pg = PreparedGraph::builder(g).profile(profile).build().unwrap();
                let placed = digest(kind, &Executor::new(profile), &pg);
                let unplaced = digest(
                    kind,
                    &Executor::new(profile).with_numa_placement(false),
                    &pg,
                );
                assert_digests_agree(
                    &placed,
                    &unplaced,
                    &format!("{} on {:?}", kind.code(), profile.kind),
                )?;
            }
        }
    }

    /// The NUMA-placed task visiting order is a permutation of the
    /// unplaced (index) order.
    #[test]
    fn placed_task_order_is_a_permutation(num_tasks in 1usize..500) {
        for profile in [
            SystemProfile::polymer_like(),
            SystemProfile::graphgrind_like(EdgeOrder::Hilbert),
        ] {
            let plan = Executor::new(profile)
                .placement(num_tasks)
                .expect("static profiles are placed");
            let order = plan.execution_order();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..num_tasks).collect::<Vec<_>>());
        }
    }
}

/// Acceptance: an executor built from a `polymer_like()` or
/// `graphgrind_like()` profile reports a socket assignment for every
/// task of a prepared graph, and the assignments tile the topology.
#[test]
fn static_executors_report_socket_assignments() {
    let g = vebo::graph::Dataset::TwitterLike.build(0.05);
    for profile in [
        SystemProfile::polymer_like(),
        SystemProfile::graphgrind_like(EdgeOrder::Csr),
    ] {
        let exec = Executor::new(profile);
        let pg = PreparedGraph::builder(g.clone())
            .profile(profile)
            .build()
            .unwrap();
        let plan = exec
            .placement(pg.num_tasks())
            .expect("static profiles are placed");
        assert_eq!(plan.num_tasks(), pg.num_tasks());
        let mut per_socket = vec![0usize; profile.topology.num_sockets];
        for t in 0..pg.num_tasks() {
            per_socket[plan.socket_of(t)] += 1;
        }
        assert!(
            per_socket.iter().all(|&c| c > 0),
            "every socket gets tasks: {per_socket:?}"
        );
        // Measured reports carry the same socket tags.
        let (_, report) = pagerank(&exec, &pg, &PageRankConfig::default());
        for em in &report.edge_maps {
            for (t, stats) in em.tasks.iter().enumerate() {
                assert_eq!(stats.socket as usize, plan.socket_of(t));
            }
        }
    }
    // Ligra's dynamic work stealing has no static placement.
    assert!(Executor::new(SystemProfile::ligra_like())
        .placement(48)
        .is_none());
}
