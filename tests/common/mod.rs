//! Shared helpers for the engine conformance suites
//! (`storage_equivalence.rs`, `executor_conformance.rs`): equality over
//! everything *deterministic* in a run's measurement reports.

use vebo::engine::{EdgeMapReport, RunReport};

/// Two edgemap reports must agree on traversal choice, output size, and
/// per-task work/socket stamps (wall-clock nanos and the per-shard
/// occupancy report are the only fields allowed to differ).
pub fn assert_edge_maps_match(a: &EdgeMapReport, b: &EdgeMapReport, tag: &str) {
    assert_eq!(a.traversal, b.traversal, "{tag}: traversal choice");
    assert_eq!(a.output_size, b.output_size, "{tag}: output size");
    assert_eq!(a.tasks.len(), b.tasks.len(), "{tag}: task count");
    for (i, (x, y)) in a.tasks.iter().zip(&b.tasks).enumerate() {
        assert_eq!(x.edges, y.edges, "{tag}: task {i} edges");
        assert_eq!(x.vertices, y.vertices, "{tag}: task {i} vertices");
        assert_eq!(x.socket, y.socket, "{tag}: task {i} socket");
    }
}

/// Everything deterministic in two run reports must agree.
pub fn assert_reports_match(a: &RunReport, b: &RunReport, tag: &str) {
    assert_eq!(a.iterations, b.iterations, "{tag}: iterations");
    assert_eq!(
        a.frontier_classes, b.frontier_classes,
        "{tag}: frontier classes"
    );
    assert_eq!(a.edge_maps.len(), b.edge_maps.len(), "{tag}: edgemap count");
    for (i, (x, y)) in a.edge_maps.iter().zip(&b.edge_maps).enumerate() {
        assert_edge_maps_match(x, y, &format!("{tag} edgemap {i}"));
    }
    assert_eq!(
        a.vertex_maps.len(),
        b.vertex_maps.len(),
        "{tag}: vertexmap count"
    );
    for (i, (x, y)) in a.vertex_maps.iter().zip(&b.vertex_maps).enumerate() {
        assert_eq!(x.tasks.len(), y.tasks.len(), "{tag}: vertexmap {i} tasks");
        assert_eq!(
            x.total_vertices(),
            y.total_vertices(),
            "{tag}: vertexmap {i} vertices"
        );
    }
}
