//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the proptest API subset its test suites use: the [`proptest!`] macro,
//! `prop_assert*` / `prop_assume!`, [`strategy::Strategy`] with `prop_map`
//! and `prop_flat_map`, range / tuple / [`prelude::Just`] / `any` /
//! [`collection::vec`] strategies, and [`prelude::ProptestConfig`] case
//! counts.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs (via `Debug`
//!   where available) and the deterministic case seed, but is not
//!   minimized;
//! * case generation is seeded from the test name, so runs are
//!   reproducible without a persisted regression file; set
//!   `PROPTEST_SEED` to explore different streams.

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> PropMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            PropMap { base: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S, F>(self, f: F) -> PropFlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            PropFlatMap { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct PropMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for PropMap<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct PropFlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for PropFlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    /// Always generates a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform values over a type's natural domain; see [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// The `any::<T>()` strategy.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.random()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates `Vec`s with lengths drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case violated a `prop_assume!` precondition; it is skipped
        /// and does not count toward the case budget.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    /// Runner configuration; see `prelude::ProptestConfig`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Runs `body` against `config.cases` sampled inputs. Panics on the
    /// first failure with the offending case's seed. `PROPTEST_SEED`
    /// overrides the name-derived base seed.
    pub fn run<S, F>(config: &Config, test_name: &str, strategy: &S, body: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or_else(|| fnv1a(test_name.as_bytes()));
        let max_attempts = (config.cases as u64) * 20;
        let mut passed = 0u64;
        let mut attempt = 0u64;
        let mut rejected = 0u64;
        while passed < config.cases as u64 {
            if attempt >= max_attempts {
                panic!(
                    "{test_name}: gave up after {attempt} attempts \
                     ({passed} passed, {rejected} rejected by prop_assume!)"
                );
            }
            let case_seed = base_seed.wrapping_add(attempt);
            let mut rng = StdRng::seed_from_u64(case_seed);
            let value = strategy.sample(&mut rng);
            match body(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{test_name}: property failed at case #{attempt} \
                         (PROPTEST_SEED={base_seed}, case seed {case_seed}):\n{msg}"
                    );
                }
            }
            attempt += 1;
        }
    }
}

pub mod prelude {
    //! Everything a property-test module needs in scope.

    pub use crate::strategy::{any, Just, Strategy};
    /// Configuration alias matching real proptest's prelude.
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    &($($strat,)+),
                    |($($pat,)+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Skips cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0u32..10, 0u32..10).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(a % 2 == 0);
            prop_assert!(b < 10);
        }

        #[test]
        fn flat_map_threads_values((n, k) in (1usize..20).prop_flat_map(|n| (Just(n), 0usize..20))) {
            prop_assert!((1..20).contains(&n));
            prop_assert!(k < 20);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0.0f64..1.0, 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_info() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(8),
            "failures_panic_with_case_info",
            &(0usize..10,),
            |(_x,)| Err(TestCaseError::Fail("forced".into())),
        );
    }
}
