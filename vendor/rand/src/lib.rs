//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the rand 0.9 API it actually uses: the [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::StdRng`] (xoshiro256** seeded via
//! SplitMix64), uniform ranges, and [`seq::SliceRandom::shuffle`]
//! (Fisher–Yates). Streams are deterministic per seed, which is all the
//! generators and tests rely on; swapping in the real crate only requires
//! re-seeding any golden values derived from specific streams.

#![warn(missing_docs)]

/// A source of randomness: the API subset of `rand::Rng` used here.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value of `T` (`f64` in `[0, 1)`, integers over
    /// their full range, `bool` fair).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniformly random value in `range` (half-open).
    fn random_range<T: UniformSampled>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1), the canonical double construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types samplable uniformly from a half-open range.
pub trait UniformSampled: Copy + PartialOrd {
    /// Draws one value in `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

/// Unbiased `[0, bound)` via Lemire-style rejection on the high bits.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample from an empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

impl UniformSampled for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "cannot sample from an empty range");
        range.start + f64::from_rng(rng) * (range.end - range.start)
    }
}

/// Seedable construction, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministically derives a generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Fast, 256-bit state, passes BigCrush — more than
    /// enough for synthetic graph generation and tests.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut x = seed;
            StdRng {
                s: [
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Shuffling, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_respects_bounds_and_hits_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
