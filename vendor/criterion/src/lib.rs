//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the criterion API subset its benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `measurement_time` /
//! `bench_function` / `finish`, [`BenchmarkId`], [`Bencher::iter`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is simple wall-clock sampling: after one calibration run,
//! each sample times a batch of iterations sized so the whole benchmark
//! fits the measurement budget, and the report prints min / mean / max per
//! iteration. No statistical outlier analysis, HTML reports, or baseline
//! comparisons — enough to rank implementations and spot regressions from
//! a terminal.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so call sites can use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().0, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut BenchmarkGroup {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, f: F) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.sample_size, self.measurement_time, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, possibly parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Normalized benchmark label accepted by `bench_function`.
pub struct BenchId(pub String);

impl From<&str> for BenchId {
    fn from(s: &str) -> BenchId {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> BenchId {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> BenchId {
        BenchId(id.label)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    /// Iterations to run per timed sample (set by the harness).
    batch: u64,
    /// Total time spent inside `iter` batches.
    elapsed: Duration,
}

impl Bencher {
    /// Times `batch` invocations of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

fn format_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: one iteration to size the batches.
    let mut b = Bencher {
        batch: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let estimate = b.elapsed.max(Duration::from_nanos(1));
    let total_iters = (budget.as_secs_f64() / estimate.as_secs_f64()).clamp(1.0, 1e9);
    let batch = ((total_iters / sample_size as f64).floor() as u64).max(1);

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / batch as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label:<48} time: [{} {} {}]  ({sample_size} samples x {batch} iters)",
        format_nanos(min),
        format_nanos(mean),
        format_nanos(max),
    );
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("demo");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::new("count", 1), |b| b.iter(|| calls += 1));
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        assert!(calls > 0);
    }
}
