//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the rayon API subset it uses, implemented with `std::thread::scope` and
//! contiguous chunking instead of a work-stealing deque. Each parallel
//! operation splits its index space into one contiguous chunk per thread;
//! for the regular, balanced loops in this codebase (counting sorts,
//! per-vertex scatters, per-task timing) that is within noise of real
//! rayon, and the API is source-compatible so the real crate can be
//! swapped in when a registry is available.
//!
//! Supported surface:
//!
//! * `prelude::*` with [`IntoParallelIterator`] on integer ranges and
//!   `Vec`, [`ParallelSlice::par_chunks`] /
//!   [`ParallelSliceMut::par_chunks_mut`], `par_iter` / `par_iter_mut`;
//! * adapters `map`, `enumerate`, `with_min_len`; terminals `for_each`,
//!   `collect`, `sum`, `reduce`;
//! * [`join`], [`current_num_threads`];
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — a pool here is a
//!   thread-count policy applied for the duration of `install`, not a set
//!   of persistent workers.

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global default thread count; 0 means "use available parallelism".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads parallel operations started from this thread
/// will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed > 0 {
        return installed;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `a` and `b`, in parallel when more than one thread is configured.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim: joined task panicked"))
    })
}

/// Splits `0..len` into at most `current_num_threads()` contiguous chunks
/// and invokes `run` on each, in parallel. `min_len` bounds the smallest
/// chunk worth spawning a thread for.
fn for_each_chunk<F>(len: usize, min_len: usize, run: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = current_num_threads();
    let min_len = min_len.max(1);
    let max_chunks = len.div_ceil(min_len);
    let chunks = threads.min(max_chunks).max(1);
    if chunks == 1 {
        run(0..len);
        return;
    }
    let per = len.div_ceil(chunks);
    std::thread::scope(|s| {
        for c in 1..chunks {
            let run = &run;
            let start = c * per;
            let end = ((c + 1) * per).min(len);
            if start < end {
                s.spawn(move || run(start..end));
            }
        }
        run(0..per.min(len));
    });
}

/// As [`for_each_chunk`], collecting each chunk's mapped output in order.
fn map_chunks<R, F>(len: usize, min_len: usize, run: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
{
    let threads = current_num_threads();
    let min_len = min_len.max(1);
    let max_chunks = len.div_ceil(min_len);
    let chunks = threads.min(max_chunks).max(1);
    if chunks == 1 {
        return vec![run(0..len)];
    }
    let per = len.div_ceil(chunks);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 1..chunks {
            let run = &run;
            let start = c * per;
            let end = ((c + 1) * per).min(len);
            if start < end {
                handles.push(s.spawn(move || run(start..end)));
            }
        }
        let mut out = Vec::with_capacity(chunks);
        out.push(run(0..per.min(len)));
        for h in handles {
            out.push(h.join().expect("rayon-shim: worker panicked"));
        }
        out
    })
}

/// An indexed source of items: every parallel iterator here is one.
pub trait IndexedSource: Sync + Sized {
    /// The item type.
    type Item: Send;
    /// Number of items.
    fn src_len(&self) -> usize;
    /// The `i`-th item. Must be safe to call once per index from any thread.
    fn src_get(&self, i: usize) -> Self::Item;
}

/// The parallel-iterator combinators and terminals.
pub trait ParallelIterator: IndexedSource {
    /// Maps each item through `f`.
    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Lower-bounds the per-thread chunk size.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }

    /// Invokes `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        for_each_chunk(self.src_len(), 1, |range| {
            for i in range {
                f(self.src_get(i));
            }
        });
    }

    /// Collects into `C`, preserving item order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        let parts = map_chunks(self.src_len(), 1, |range| {
            range.map(|i| self.src_get(i)).collect::<Vec<_>>()
        });
        parts.into_iter().flatten().collect()
    }

    /// Sums all items, in parallel.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let parts = map_chunks(self.src_len(), 1, |range| {
            vec![range.map(|i| self.src_get(i)).sum::<S>()]
        });
        parts.into_iter().flatten().sum()
    }

    /// Reduces with `op`, seeding each chunk with `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let parts = map_chunks(self.src_len(), 1, |range| {
            vec![range.map(|i| self.src_get(i)).fold(identity(), &op)]
        });
        parts.into_iter().flatten().fold(identity(), &op)
    }
}

impl<T: IndexedSource> ParallelIterator for T {}

/// `map` adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I: IndexedSource, R: Send, F: Fn(I::Item) -> R + Sync> IndexedSource for Map<I, F> {
    type Item = R;
    fn src_len(&self) -> usize {
        self.base.src_len()
    }
    fn src_get(&self, i: usize) -> R {
        (self.f)(self.base.src_get(i))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<I> {
    base: I,
}

impl<I: IndexedSource> IndexedSource for Enumerate<I> {
    type Item = (usize, I::Item);
    fn src_len(&self) -> usize {
        self.base.src_len()
    }
    fn src_get(&self, i: usize) -> (usize, I::Item) {
        (i, self.base.src_get(i))
    }
}

/// `with_min_len` adapter (accepted and currently advisory: chunking is
/// already one contiguous block per thread).
pub struct MinLen<I> {
    base: I,
    #[allow(dead_code)]
    min: usize,
}

impl<I: IndexedSource> IndexedSource for MinLen<I> {
    type Item = I::Item;
    fn src_len(&self) -> usize {
        self.base.src_len()
    }
    fn src_get(&self, i: usize) -> I::Item {
        self.base.src_get(i)
    }
}

/// Conversion into a parallel iterator (`0..n`, `Vec`, `&[T]`).
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
pub struct ParRange<T> {
    start: T,
    len: usize,
}

macro_rules! impl_par_range {
    ($($t:ty),*) => {$(
        impl IndexedSource for ParRange<$t> {
            type Item = $t;
            fn src_len(&self) -> usize {
                self.len
            }
            fn src_get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = ParRange<$t>;
            type Item = $t;
            fn into_par_iter(self) -> ParRange<$t> {
                let len = if self.end > self.start { (self.end - self.start) as usize } else { 0 };
                ParRange { start: self.start, len }
            }
        }
    )*};
}

impl_par_range!(usize, u64, u32);

/// Parallel iterator over `&[T]`.
pub struct ParSliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedSource for ParSliceIter<'a, T> {
    type Item = &'a T;
    fn src_len(&self) -> usize {
        self.slice.len()
    }
    fn src_get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = ParSliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> ParSliceIter<'a, T> {
        ParSliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = ParSliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> ParSliceIter<'a, T> {
        ParSliceIter { slice: self }
    }
}

/// Parallel iterator over owned `Vec<T>` items.
pub struct ParVecIter<T> {
    items: Vec<T>,
}

impl<T: Send + Sync + Clone> IndexedSource for ParVecIter<T> {
    type Item = T;
    fn src_len(&self) -> usize {
        self.items.len()
    }
    fn src_get(&self, i: usize) -> T {
        self.items[i].clone()
    }
}

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Iter = ParVecIter<T>;
    type Item = T;
    fn into_par_iter(self) -> ParVecIter<T> {
        ParVecIter { items: self }
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParSliceIter<'_, T>;
    /// Parallel iterator over non-overlapping chunks of length `size`.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSliceIter<'_, T> {
        ParSliceIter { slice: self }
    }
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunks { slice: self, size }
    }
}

/// Parallel iterator over immutable chunks.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> IndexedSource for ParChunks<'a, T> {
    type Item = &'a [T];
    fn src_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn src_get(&self, i: usize) -> &'a [T] {
        let start = i * self.size;
        let end = (start + self.size).min(self.slice.len());
        &self.slice[start..end]
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices. Implemented by
/// handing disjoint subslices (`chunks_mut`) to scoped threads — no
/// unsafe required.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel mutable iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParSliceIterMut<'_, T>;
    /// Parallel mutable iterator over non-overlapping chunks of length
    /// `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSliceIterMut<'_, T> {
        ParSliceIterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, size }
    }
}

/// Parallel mutable per-item iterator.
pub struct ParSliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceIterMut<'a, T> {
    /// Invokes `f` on every element, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync + Send,
    {
        self.enumerate().for_each(|(_, x)| f(x));
    }

    /// Pairs each element with its index.
    pub fn enumerate(self) -> ParSliceIterMutEnumerate<'a, T> {
        ParSliceIterMutEnumerate { slice: self.slice }
    }
}

/// Enumerated parallel mutable iterator.
pub struct ParSliceIterMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceIterMutEnumerate<'a, T> {
    /// Invokes `f` on every `(index, &mut element)`, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync + Send,
    {
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let threads = current_num_threads().min(len);
        if threads == 1 {
            for (i, x) in self.slice.iter_mut().enumerate() {
                f((i, x));
            }
            return;
        }
        let per = len.div_ceil(threads);
        std::thread::scope(|s| {
            for (c, chunk) in self.slice.chunks_mut(per).enumerate() {
                let f = &f;
                s.spawn(move || {
                    for (k, x) in chunk.iter_mut().enumerate() {
                        f((c * per + k, x));
                    }
                });
            }
        });
    }
}

/// Parallel mutable chunk iterator.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Invokes `f` on every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync + Send,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }

    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            size: self.size,
        }
    }
}

/// Enumerated parallel mutable chunk iterator.
pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Invokes `f` on every `(index, chunk)`, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync + Send,
    {
        let chunks: Vec<(usize, &mut [T])> = self.slice.chunks_mut(self.size).enumerate().collect();
        let threads = current_num_threads().min(chunks.len().max(1));
        if threads <= 1 || chunks.len() <= 1 {
            for item in chunks {
                f(item);
            }
            return;
        }
        let per = chunks.len().div_ceil(threads);
        let mut groups: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(threads);
        let mut it = chunks.into_iter();
        loop {
            let group: Vec<_> = it.by_ref().take(per).collect();
            if group.is_empty() {
                break;
            }
            groups.push(group);
        }
        std::thread::scope(|s| {
            for group in groups {
                let f = &f;
                s.spawn(move || {
                    for item in group {
                        f(item);
                    }
                });
            }
        });
    }
}

/// Error from [`ThreadPoolBuilder::build`]. The shim cannot actually fail,
/// but the type keeps call sites source-compatible.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the thread count (0 = available parallelism).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Builds a pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }

    /// Installs the thread count as the process-wide default.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A thread-count policy; see the module docs.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing every parallel
    /// operation started from the calling thread.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let prev = INSTALLED_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.effective());
            prev
        });
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.effective()
    }

    fn effective(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

pub mod iter {
    //! Re-exports mirroring `rayon::iter`.
    pub use crate::{
        IndexedSource, IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

pub mod prelude {
    //! The traits a caller needs in scope, as in `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

pub mod slice {
    //! Re-exports mirroring `rayon::slice`.
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 2);
        }
    }

    #[test]
    fn for_each_covers_every_index() {
        let flags: Vec<std::sync::atomic::AtomicUsize> = (0..5000)
            .map(|_| std::sync::atomic::AtomicUsize::new(0))
            .collect();
        (0..5000usize).into_par_iter().for_each(|i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_iter_mut_writes_all() {
        let mut v = vec![0usize; 10_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i + 1);
        }
    }

    #[test]
    fn par_chunks_mut_disjoint() {
        let mut v = vec![0u32; 9973];
        v.par_chunks_mut(100).enumerate().for_each(|(c, chunk)| {
            for x in chunk.iter_mut() {
                *x = c as u32;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 100) as u32);
        }
    }

    #[test]
    fn sum_matches_sequential() {
        let s: u64 = (0u64..100_000).into_par_iter().sum();
        assert_eq!(s, 100_000 * 99_999 / 2);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(current_num_threads(), 0);
    }
}
