//! Tour of the executor-centric engine API.
//!
//! One `Executor` owns every execution policy — threading mode, NUMA
//! placement, scheduling, instrumentation — and `PreparedGraph::builder`
//! is the single construction path for execution-ready graphs. This
//! example walks through all four responsibilities:
//!
//! 1. build a prepared graph (with VEBO's exact boundaries) per profile;
//! 2. run an algorithm sequentially vs in parallel (identical results);
//! 3. inspect the NUMA placement plan of a statically scheduled profile
//!    and the per-socket time split of a measured edgemap;
//! 4. attach a custom instrumentation sink.
//!
//! ```text
//! cargo run --release --example executor
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vebo::core::Vebo;
use vebo::engine::{
    DensityClass, EdgeMapReport, ExecMode, Executor, InstrumentSink, PreparedGraph, SystemProfile,
    VertexMapReport,
};
use vebo::graph::Dataset;
use vebo::partition::EdgeOrder;
use vebo_algorithms::pagerank::{pagerank, PageRankConfig};

/// A custom sink: counts operations and dense rounds.
#[derive(Default)]
struct OpCounter {
    edge_maps: AtomicUsize,
    vertex_maps: AtomicUsize,
    dense_rounds: AtomicUsize,
}

impl InstrumentSink for OpCounter {
    fn record_edge_map(&self, class: DensityClass, _report: &EdgeMapReport) {
        self.edge_maps.fetch_add(1, Ordering::Relaxed);
        if class == DensityClass::Dense {
            self.dense_rounds.fetch_add(1, Ordering::Relaxed);
        }
    }
    fn record_vertex_map(&self, _report: &VertexMapReport) {
        self.vertex_maps.fetch_add(1, Ordering::Relaxed);
    }
}

fn main() {
    let g = Dataset::TwitterLike.build(0.2);
    println!(
        "twitter-like graph: {} vertices, {} edges\n",
        g.num_vertices(),
        g.num_edges()
    );

    // ---- 1. prepare the graph through the builder --------------------
    let vebo = Vebo::new(48).compute_full(&g);
    let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr).with_partitions(48);
    let pg = PreparedGraph::builder(vebo.permutation.apply_graph(&g))
        .profile(profile)
        .vebo_starts(Some(&vebo.starts))
        .build()
        .expect("VEBO boundaries are valid");
    println!(
        "prepared {} tasks under the GraphGrind-like profile (exact VEBO bounds)",
        pg.num_tasks()
    );

    // ---- 2. sequential (measured) vs parallel execution --------------
    let cfg = PageRankConfig::default();
    let sequential = Executor::new(profile);
    let parallel = Executor::new(profile).with_mode(ExecMode::Parallel);
    let (ranks_seq, report) = pagerank(&sequential, &pg, &cfg);
    let (ranks_par, _) = pagerank(&parallel, &pg, &cfg);
    let max_diff = ranks_seq
        .iter()
        .zip(&ranks_par)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("sequential vs parallel PageRank: max |diff| = {max_diff:.2e}");
    println!(
        "simulated {}-thread runtime ({:?} scheduling): {:.3} ms",
        profile.topology.num_threads,
        profile.scheduling,
        sequential.simulated_seconds(&report) * 1e3
    );

    // ---- 3. NUMA placement -------------------------------------------
    let plan = sequential
        .placement(pg.num_tasks())
        .expect("static profiles are placed");
    println!(
        "\nplacement plan: {} tasks over {} sockets; socket of task 0/24/47 = {}/{}/{}",
        plan.num_tasks(),
        plan.num_sockets(),
        plan.socket_of(0),
        plan.socket_of(24),
        plan.socket_of(47),
    );
    let em = &report.edge_maps[0];
    let per_socket = em.per_socket_nanos();
    println!(
        "first edgemap, measured time per socket (us): {:?}",
        per_socket.iter().map(|n| n / 1_000).collect::<Vec<_>>()
    );

    // ---- 4. a custom instrumentation sink ----------------------------
    let counter = Arc::new(OpCounter::default());
    let instrumented = Executor::new(profile).with_sink(counter.clone());
    let _ = pagerank(&instrumented, &pg, &cfg);
    println!(
        "\ncustom sink saw {} edgemaps ({} dense) and {} vertexmaps",
        counter.edge_maps.load(Ordering::Relaxed),
        counter.dense_rounds.load(Ordering::Relaxed),
        counter.vertex_maps.load(Ordering::Relaxed),
    );
}
