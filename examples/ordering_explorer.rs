//! Ordering explorer: compares every vertex ordering in the workspace on
//! balance, locality, and reordering cost — the trade-off space the paper
//! navigates.
//!
//! ```text
//! cargo run --release --example ordering_explorer
//! ```

use std::time::Instant;
use vebo::baselines::{DegreeSort, Gorder, RandomOrder, Rcm, SlashBurn};
use vebo::core::{balance::BalanceReport, Vebo};
use vebo::graph::{Dataset, Graph, Permutation, VertexOrdering};
use vebo::partition::{MetisLikeOrder, PartitionBounds};
use vebo_baselines::gorder::locality_objective;
use vebo_baselines::rcm::bandwidth;

const P: usize = 48;

type OrderingFn = Box<dyn Fn(&Graph) -> Permutation>;

fn evaluate(name: &str, g: &Graph, perm: Permutation, elapsed_s: f64) {
    let h = perm.apply_graph(g);
    let bounds = PartitionBounds::edge_balanced(&h, P);
    let mut edges = Vec::new();
    let mut verts = Vec::new();
    for (_, r) in bounds.iter() {
        edges.push(r.clone().map(|v| h.in_degree(v as u32) as u64).sum::<u64>());
        verts.push(r.len());
    }
    let report = BalanceReport::from_counts(edges, verts);
    println!(
        "{:<11} {:>9.3}s  edge-imb {:>6}  vert-imb {:>6}  bandwidth {:>8}  locality {:>8}",
        name,
        elapsed_s,
        report.edge_imbalance,
        report.vertex_imbalance,
        bandwidth(g, &perm),
        locality_objective(g, &perm, 5),
    );
}

fn main() {
    let g = Dataset::LiveJournalLike.build(0.15);
    println!(
        "orderings on livejournal-like ({} vertices, {} edges), Algorithm 1 at P = {P}:\n",
        g.num_vertices(),
        g.num_edges()
    );
    println!(
        "{:<11} {:>10}  {:<15} {:<15} {:<18} Gorder objective",
        "ordering", "time", "(max-min edges)", "(max-min verts)", "matrix bandwidth"
    );

    let orderings: Vec<(&str, OrderingFn)> = vec![
        (
            "Original",
            Box::new(|g: &Graph| Permutation::identity(g.num_vertices())),
        ),
        ("VEBO", Box::new(|g: &Graph| Vebo::new(P).compute(g))),
        ("RCM", Box::new(|g: &Graph| Rcm.compute(g))),
        ("Gorder", Box::new(|g: &Graph| Gorder::new().compute(g))),
        ("HighToLow", Box::new(|g: &Graph| DegreeSort.compute(g))),
        (
            "Random",
            Box::new(|g: &Graph| RandomOrder::new(1).compute(g)),
        ),
        (
            "SlashBurn",
            Box::new(|g: &Graph| SlashBurn::default().compute(g)),
        ),
        (
            "METIS-like",
            Box::new(|g: &Graph| MetisLikeOrder::new(P).compute(g)),
        ),
    ];
    for (name, f) in orderings {
        let t0 = Instant::now();
        let perm = f(&g);
        evaluate(name, &g, perm, t0.elapsed().as_secs_f64());
    }
    println!(
        "\nReading: VEBO wins balance at negligible cost; Gorder wins its own\n\
         locality objective but pays orders of magnitude more time; RCM minimizes\n\
         bandwidth. No ordering wins everything — the paper's point is that for\n\
         statically scheduled graph processing, balance is the axis that pays."
    );
}
