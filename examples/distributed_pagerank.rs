//! Distributed PageRank: the paper's §VII future-work question, answered
//! on the BSP cluster simulator.
//!
//! Compares VEBO-ordered chunk partitioning against the original order
//! and a cut-minimizing multilevel partition on a 16-worker cluster,
//! reporting compute makespan, communication time and total simulated
//! time. On power-law graphs VEBO's balance wins; on the road network the
//! cut-optimizer wins — the same split the paper found on shared memory
//! (§V-A vs §V-B).
//!
//! ```text
//! cargo run --release --example distributed_pagerank
//! ```

use vebo::distributed::{evaluate, ClusterConfig, Strategy};
use vebo::graph::Dataset;
use vebo_algorithms::default_source;

fn main() {
    let cfg = ClusterConfig {
        workers: 16,
        ..Default::default()
    };
    let iters = 10;
    println!(
        "PageRank x{iters} on a simulated {}-worker BSP cluster\n",
        cfg.workers
    );

    for dataset in [Dataset::TwitterLike, Dataset::UsaRoadLike] {
        let g = dataset.build(0.3);
        let src = default_source(&g);
        println!(
            "{} ({} vertices, {} edges):",
            dataset.name(),
            g.num_vertices(),
            g.num_edges()
        );
        println!(
            "  {:<16} {:>7} {:>10} {:>10} {:>12} {:>9}",
            "strategy", "repl.", "compute", "comm", "total", "speedup"
        );
        let mut base = None;
        for s in [
            Strategy::ChunkOriginal,
            Strategy::ChunkVebo,
            Strategy::Multilevel,
        ] {
            let row = evaluate(s, &g, &cfg, iters, src).expect("validated cluster config");
            let b = *base.get_or_insert(row.pr_total);
            println!(
                "  {:<16} {:>7.2} {:>10.0} {:>10.0} {:>12.0} {:>8.2}x",
                row.strategy,
                row.replication_factor,
                row.pr_compute,
                row.pr_comm,
                row.pr_total,
                b / row.pr_total,
            );
        }
        println!();
    }
    println!(
        "Reading: VEBO lifts the compute-balance win of the paper's shared-memory\n\
         systems onto the cluster when the graph is scale-free; the road network\n\
         still prefers cut minimization, exactly as §V-B observed."
    );
}
