//! Quickstart: the VEBO pipeline in one file.
//!
//! Reproduces the paper's Figure 3 worked example on the 6-vertex graph,
//! then runs the full pipeline (generate -> reorder -> partition ->
//! process) on a Twitter-like graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vebo::core::{balance::BalanceReport, Vebo};
use vebo::engine::{Executor, PreparedGraph, SystemProfile};
use vebo::graph::{Dataset, Graph};
use vebo_algorithms::pagerank::{pagerank, PageRankConfig};

fn main() {
    // ---- Part 1: the paper's Figure 3 example -------------------------
    println!("== Figure 3: the 6-vertex worked example ==\n");
    let g = Graph::from_edges(
        6,
        &[
            (2, 0),
            (5, 1),
            (3, 1),
            (1, 2),
            (5, 2),
            (4, 3),
            (5, 3),
            (0, 4),
            (1, 4),
            (2, 4),
            (3, 4),
            (4, 5),
            (2, 5),
            (1, 5),
        ],
        true,
    );
    let result = Vebo::new(2)
        .with_variant(vebo::core::VeboVariant::Strict)
        .compute_full(&g);
    println!(
        "in-degrees : {:?}",
        (0..6).map(|v| g.in_degree(v)).collect::<Vec<_>>()
    );
    println!(
        "assignment : {:?}  (partition of each original vertex)",
        result.assignment
    );
    println!("new ids    : {:?}  (S[v])", result.permutation.as_slice());
    println!(
        "edges/part : {:?}  vertices/part: {:?}",
        result.edge_counts, result.vertex_counts
    );
    assert_eq!(
        result.edge_counts,
        vec![7, 7],
        "each partition holds 7 in-edges, as in the paper"
    );
    assert_eq!(result.vertex_counts, vec![3, 3]);

    // ---- Part 2: a realistic graph ------------------------------------
    println!("\n== VEBO on a Twitter-like power-law graph ==\n");
    let g = Dataset::TwitterLike.build(0.2);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let vebo = Vebo::new(48);
    let result = vebo.compute_full(&g);
    let report = BalanceReport::from_result(&result);
    println!(
        "VEBO @ P=48: edge imbalance Delta(n) = {}, vertex imbalance delta(n) = {}",
        report.edge_imbalance, report.vertex_imbalance
    );

    // Reorder the graph and run PageRank on the GraphGrind-like system,
    // feeding VEBO's exact phase-3 boundaries through the builder.
    let reordered = result.permutation.apply_graph(&g);
    let profile =
        SystemProfile::graphgrind_like(vebo::partition::EdgeOrder::Csr).with_partitions(48);
    let exec = Executor::new(profile);
    let pg = PreparedGraph::builder(reordered)
        .profile(profile)
        .vebo_starts(Some(&result.starts))
        .build()
        .expect("VEBO boundaries are valid");
    let (ranks, run) = pagerank(&exec, &pg, &PageRankConfig::default());
    let top = ranks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "PageRank: 10 iterations over {} edges; top vertex {} with rank {:.6}",
        run.total_edges(),
        top.0,
        top.1
    );
    println!(
        "simulated 48-thread runtime (static scheduling): {:.3} ms",
        run.simulated_nanos(48, vebo::engine::Scheduling::Static) / 1e6
    );
}
