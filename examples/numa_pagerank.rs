//! NUMA-style PageRank: the paper's headline experiment in miniature.
//!
//! Runs PageRank on the three simulated systems (Ligra-, Polymer-,
//! GraphGrind-like) with the original ordering and with VEBO, and prints
//! the simulated 48-thread makespans — showing that statically scheduled
//! systems benefit most from VEBO's balance (§V-A).
//!
//! ```text
//! cargo run --release --example numa_pagerank
//! ```

use vebo::engine::{Executor, PreparedGraph, SystemKind, SystemProfile};
use vebo::graph::Dataset;
use vebo::partition::EdgeOrder;
use vebo_algorithms::pagerank::{pagerank, PageRankConfig};
use vebo_bench::{ordered_with_starts, OrderingKind};

fn main() {
    let g = Dataset::TwitterLike.build(0.3);
    println!(
        "PageRank (10 iterations) on twitter-like: {} vertices, {} edges\n",
        g.num_vertices(),
        g.num_edges()
    );
    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "system", "original (ms)", "VEBO (ms)", "speedup"
    );

    for kind in [
        SystemKind::LigraLike,
        SystemKind::PolymerLike,
        SystemKind::GraphGrindLike,
    ] {
        let mut times = Vec::new();
        for ordering in [OrderingKind::Original, OrderingKind::Vebo] {
            let profile = match kind {
                SystemKind::LigraLike => SystemProfile::ligra_like(),
                SystemKind::PolymerLike => SystemProfile::polymer_like(),
                SystemKind::GraphGrindLike => {
                    // VEBO pairs with CSR edge order (§V-G).
                    if ordering == OrderingKind::Vebo {
                        SystemProfile::graphgrind_like(EdgeOrder::Csr)
                    } else {
                        SystemProfile::graphgrind_like(EdgeOrder::Hilbert)
                    }
                }
            };
            let p = if kind == SystemKind::PolymerLike {
                4
            } else {
                384
            };
            let (h, starts, _) = ordered_with_starts(&g, ordering, p);
            let exec = Executor::new(profile);
            let pg = PreparedGraph::builder(h)
                .profile(profile)
                .vebo_starts(starts.as_deref())
                .build()
                .expect("VEBO boundaries are valid");
            let (_, report) = pagerank(&exec, &pg, &PageRankConfig::default());
            // The executor knows its profile's scheduling policy and
            // simulated thread count.
            times.push(exec.simulated_seconds(&report) * 1e3);
        }
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>9.2}x",
            kind.name(),
            times[0],
            times[1],
            times[0] / times[1]
        );
    }
    println!(
        "\nExpected shape (paper Table III): the statically scheduled systems\n\
         (Polymer, GraphGrind) gain more from VEBO than dynamically scheduled Ligra."
    );
}
