//! Tour of the three on-disk graph formats and the streaming loader.
//!
//! ```text
//! cargo run --release --example io_formats
//! ```
//!
//! Generates a small RMAT graph, writes it as an edge list, a Ligra
//! `AdjacencyGraph`, and a binary `.vgr` CSR file, then reloads each
//! through the format-sniffing streaming reader and verifies all three
//! loads are bit-identical — and finally reloads the `.vgr` through the
//! zero-copy memory-mapped loader and shows the storage backing it
//! produced.

use vebo::graph::io::{self, Format, LoadMode};
use vebo::graph::{Dataset, StreamConfig};

fn main() {
    let g = Dataset::Rmat27Like.build(0.2);
    println!(
        "generated rmat27 @ 0.2: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let dir = std::env::temp_dir().join("vebo-io-formats-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");

    for format in Format::ALL {
        let path = dir.join(format!("rmat.{}", format.name()));
        io::save_graph(&g, &path, format).expect("write graph");
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

        // `None` = sniff the format from the file's first bytes. The text
        // formats stream through line-aligned chunks parsed in parallel;
        // the binary format bulk-loads the CSR arrays directly.
        let t0 = std::time::Instant::now();
        let (h, sniffed) = io::load_graph(&path, true, None).expect("read graph");
        let dt = t0.elapsed();

        assert_eq!(sniffed, format);
        assert_eq!(h.csr().offsets(), g.csr().offsets());
        assert_eq!(h.csr().targets(), g.csr().targets());
        println!(
            "  {:11} {:>9} bytes  reload {:>8.3} ms  (sniffed as {})",
            format.to_string(),
            bytes,
            dt.as_secs_f64() * 1e3,
            sniffed.name()
        );
    }

    // Small chunks exercise the same streaming machinery a billion-edge
    // file would: the parser only ever holds a batch of chunks, never the
    // whole file.
    let path = dir.join("rmat.el");
    let file = std::fs::File::open(&path).expect("open edge list");
    let tiny = StreamConfig::with_chunk_size(4096);
    let h = io::read_edge_list_with(file, true, None, &tiny).expect("streamed read");
    assert_eq!(h.csr().targets(), g.csr().targets());
    println!("  4 KiB-chunk streamed reload matches the in-memory graph");

    // Zero-copy reload: the binary file is memory-mapped and (on 64-bit
    // little-endian hosts) its CSR arrays are borrowed from the page
    // cache instead of copied. Same graph, different storage backing.
    let vgr = dir.join(format!("rmat.{}", Format::Binary.name()));
    let t0 = std::time::Instant::now();
    let (m, _) =
        io::load_graph_with(&vgr, true, Some(Format::Binary), LoadMode::Mmap).expect("mmap reload");
    let dt = t0.elapsed();
    assert_eq!(m.csr().offsets(), g.csr().offsets());
    assert_eq!(m.csr().targets(), g.csr().targets());
    println!(
        "  mmap reload {:>8.3} ms  ({} storage) matches the in-memory graph",
        dt.as_secs_f64() * 1e3,
        m.storage_kind(),
    );

    std::fs::remove_dir_all(&dir).ok();
}
