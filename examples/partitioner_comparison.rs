//! Partitioner families side by side on one graph.
//!
//! The paper's §VI surveys three schools of graph partitioning: balance-
//! first (VEBO, this paper), cut-first (METIS-style multilevel, streaming
//! LDG/Fennel), and replication-first (PowerGraph/PowerLyra vertex cuts).
//! This example materializes one partitioning from each school on the
//! same graph and prints the metrics each school optimizes — making the
//! trade-off the paper navigates visible in one screen of output.
//!
//! ```text
//! cargo run --release --example partitioner_comparison [dataset]
//! ```

use vebo::distributed::{GreedyVertexCut, HybridCut, Strategy};
use vebo::graph::Dataset;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "livejournal".to_string());
    let dataset = Dataset::from_name(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown dataset '{name}'; known: {:?}",
            Dataset::ALL.map(|d| d.name())
        );
        std::process::exit(2);
    });
    let g = dataset.build(0.3);
    let p = 16;
    println!(
        "{}: {} vertices, {} edges, {p} partitions\n",
        dataset.name(),
        g.num_vertices(),
        g.num_edges()
    );

    println!("Vertex assignments (partitioning by destination):");
    println!(
        "  {:<16} {:>7} {:>7} {:>10} {:>10}",
        "strategy", "cut %", "repl.", "vert imb", "edge imb"
    );
    for s in Strategy::ALL {
        let (h, asg) = s.realize(&g, p);
        let q = asg.quality(&h);
        println!(
            "  {:<16} {:>7.1} {:>7.2} {:>10.3} {:>10.3}",
            s.name(),
            100.0 * q.cut_fraction(),
            q.replication_factor,
            q.vertex_imbalance,
            q.edge_imbalance
        );
    }

    println!("\nEdge placements (vertex cuts):");
    println!("  {:<22} {:>7} {:>10}", "strategy", "repl.", "edge imb");
    let theta = (g.num_edges() / g.num_vertices().max(1)).max(1);
    let greedy = GreedyVertexCut.place(&g, p).expect("valid machine count");
    let hybrid = HybridCut::new(theta)
        .place(&g, p)
        .expect("valid machine count");
    for (name, pl) in [
        ("Greedy vertex-cut", &greedy),
        ("Hybrid-cut (PowerLyra)", &hybrid),
    ] {
        println!(
            "  {:<22} {:>7.2} {:>10.3}",
            name,
            pl.replication_factor(),
            pl.load_imbalance()
        );
    }

    println!(
        "\nEach school wins its own metric: VEBO the balance columns, multilevel\n\
         the cut column, the vertex cuts the replication column. The paper's\n\
         point (§II, §V) is that on shared memory the balance columns are the\n\
         ones that predict runtime."
    );
}
