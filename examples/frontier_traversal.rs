//! Frontier traversal lab: watches a BFS frontier evolve through the
//! engine's direction optimization — sparse push, dense pull, and back —
//! and prints the per-iteration statistics behind Tables II and IV.
//!
//! ```text
//! cargo run --release --example frontier_traversal
//! ```

use std::sync::atomic::{AtomicU32, Ordering};
use vebo::engine::{EdgeOp, Executor, Frontier, PreparedGraph, SystemProfile};
use vebo::graph::Dataset;
use vebo::partition::EdgeOrder;
use vebo_algorithms::default_source;

struct BfsOp {
    parent: Vec<AtomicU32>,
}

impl EdgeOp for BfsOp {
    fn update(&self, s: u32, d: u32, _w: f32) -> bool {
        if self.parent[d as usize].load(Ordering::Relaxed) == u32::MAX {
            self.parent[d as usize].store(s, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
    fn update_atomic(&self, s: u32, d: u32, _w: f32) -> bool {
        self.parent[d as usize]
            .compare_exchange(u32::MAX, s, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }
    fn cond(&self, d: u32) -> bool {
        self.parent[d as usize].load(Ordering::Relaxed) == u32::MAX
    }
}

fn main() {
    let g = Dataset::LiveJournalLike.build(0.3);
    let n = g.num_vertices();
    let src = default_source(&g);
    println!(
        "BFS from vertex {src} on livejournal-like ({} vertices, {} edges)\n",
        n,
        g.num_edges()
    );
    println!(
        "{:>4}  {:>9} {:>12} {:>7}  {:<18} {:>12}",
        "iter", "frontier", "active edges", "class", "traversal", "edges seen"
    );

    let profile = SystemProfile::graphgrind_like(EdgeOrder::Csr);
    let exec = Executor::new(profile);
    let pg = PreparedGraph::builder(g.clone())
        .profile(profile)
        .build()
        .expect("no explicit bounds, cannot fail");
    let op = BfsOp {
        parent: (0..n).map(|_| AtomicU32::new(u32::MAX)).collect(),
    };
    op.parent[src as usize].store(src, Ordering::Relaxed);

    let mut frontier = Frontier::single(n, src);
    let mut iter = 0;
    while !frontier.is_empty() {
        let class = frontier.density_class(&g);
        let active_edges = frontier.active_out_degree(&g);
        let (next, report) = exec.edge_map(&pg, &frontier, &op);
        println!(
            "{:>4}  {:>9} {:>12} {:>7}  {:<18} {:>12}",
            iter,
            frontier.len(),
            active_edges,
            class.code(),
            format!("{:?}", report.traversal),
            report.total_edges(),
        );
        frontier = next;
        iter += 1;
    }

    let reached = op
        .parent
        .iter()
        .filter(|p| p.load(Ordering::Relaxed) != u32::MAX)
        .count();
    println!("\nreached {reached} of {n} vertices in {iter} iterations");
    println!(
        "Note the direction switches: sparse (partitioned push) while the frontier\n\
         is small, dense (COO streaming) at the wavefront peak — Beamer's\n\
         direction-optimization as implemented by all three systems in the paper."
    );
}
