//! The ordering registry: one place that knows every [`VertexOrdering`]
//! in the workspace by name.
//!
//! Before this existed, the CLI, the bench pipeline, and the integration
//! tests each carried their own `match` from a name to an ordering
//! constructor, and they drifted. [`OrderingRegistry`] is now the single
//! source of truth: [`OrderingRegistry::resolve`] turns a name into a
//! boxed [`VertexOrdering`], [`OrderingRegistry::all`] enumerates the
//! whole roster for cross-ordering tests, and
//! [`chunked_balance_report`] computes the load-balance summary the CLI
//! prints, uniformly for any ordering, by running the paper's Algorithm 1
//! chunk partitioner on the reordered graph (the Figure 2 pipeline).
//!
//! The same single-source-of-truth treatment applies to the serving
//! protocol: [`REQUEST_SPECS`] is the roster of request kinds the
//! `vebo-serve` loop understands (wire code, argument count, whether the
//! request mutates the dynamic graph), and [`request_spec`] is the
//! lookup the script parser uses, so the binary's usage text, the
//! parser, and the tests cannot drift apart.

use vebo_baselines::{Boba, DegreeSort, Gorder, RandomOrder, Rcm, SlashBurn};
use vebo_core::balance::BalanceReport;
use vebo_core::Vebo;
use vebo_graph::{Graph, VertexOrdering};
use vebo_partition::{MetisLikeOrder, PartitionBounds};

/// Resolves ordering names to algorithm instances.
///
/// Algorithms that need parameters take them from the registry's
/// configuration, so every consumer (CLI flag, bench harness, test)
/// resolves identically configured instances.
#[derive(Clone, Debug)]
pub struct OrderingRegistry {
    num_partitions: usize,
    gorder_hub_cap: Option<usize>,
    random_seed: u64,
}

/// Names accepted by [`OrderingRegistry::resolve`], in the roster order
/// used by experiment tables.
pub const ORDERING_NAMES: [&str; 8] = [
    "vebo",
    "rcm",
    "gorder",
    "hightolow",
    "random",
    "slashburn",
    "metis",
    "boba",
];

impl OrderingRegistry {
    /// A registry whose partition-parameterized orderings (VEBO, METIS)
    /// target `num_partitions`.
    pub fn new(num_partitions: usize) -> OrderingRegistry {
        OrderingRegistry {
            num_partitions,
            gorder_hub_cap: None,
            random_seed: RandomOrder::default_seed(),
        }
    }

    /// Caps Gorder's hub fan-out (`None` = the faithful algorithm). Time-
    /// boxed harnesses cap it; the CLI and Table VI do not.
    pub fn with_gorder_hub_cap(mut self, cap: Option<usize>) -> OrderingRegistry {
        self.gorder_hub_cap = cap;
        self
    }

    /// Seed for the random ordering.
    pub fn with_random_seed(mut self, seed: u64) -> OrderingRegistry {
        self.random_seed = seed;
        self
    }

    /// The partition count parameterized orderings will target.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// The accepted names.
    pub fn names() -> &'static [&'static str] {
        &ORDERING_NAMES
    }

    /// Resolves `name` (case-insensitive) to an ordering, or `None` if the
    /// name is unknown.
    pub fn resolve(&self, name: &str) -> Option<Box<dyn VertexOrdering>> {
        Some(match name.to_ascii_lowercase().as_str() {
            "vebo" => Box::new(Vebo::new(self.num_partitions)) as Box<dyn VertexOrdering>,
            "rcm" => Box::new(Rcm),
            "gorder" => {
                let g = Gorder::new();
                Box::new(match self.gorder_hub_cap {
                    Some(cap) => g.with_hub_cap(cap),
                    None => g,
                })
            }
            "hightolow" => Box::new(DegreeSort),
            "random" => Box::new(RandomOrder::new(self.random_seed)),
            "slashburn" => Box::new(SlashBurn::default()),
            "metis" => Box::new(MetisLikeOrder::new(self.num_partitions)),
            "boba" => Box::new(Boba),
            _ => return None,
        })
    }

    /// Every registered ordering, paired with its registry name.
    pub fn all(&self) -> Vec<(&'static str, Box<dyn VertexOrdering>)> {
        ORDERING_NAMES
            .iter()
            .map(|&name| {
                (
                    name,
                    self.resolve(name).expect("roster names always resolve"),
                )
            })
            .collect()
    }
}

/// One serving-request kind understood by the `vebo-serve` loop and the
/// `serve-net` wire protocol: the wire code a script line (or network
/// frame) starts with, the named integer arguments that follow it, and
/// whether handling it mutates the dynamic graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestSpec {
    /// Wire code used in request scripts and output (`pr`, `add`, ...).
    pub code: &'static str,
    /// Names of the integer arguments the request line carries, in
    /// order; the argument count every parser enforces is
    /// [`RequestSpec::arity`].
    pub args: &'static [&'static str],
    /// Whether handling the request mutates the dynamic graph.
    pub mutates: bool,
    /// One-line summary for usage text.
    pub summary: &'static str,
}

impl RequestSpec {
    /// Number of integer arguments the request line carries.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The request-line grammar of this kind, e.g. `add <u> <v>` — the
    /// form usage text and protocol docs print, derived from the roster
    /// so they cannot drift from the parsers.
    pub fn grammar(&self) -> String {
        let mut out = String::from(self.code);
        for a in self.args {
            out.push_str(" <");
            out.push_str(a);
            out.push('>');
        }
        out
    }
}

/// The whole roster's request-line grammar joined with ` | ` — one line
/// of usage text covering every request kind.
pub fn request_grammar() -> String {
    REQUEST_SPECS
        .iter()
        .map(|s| s.grammar())
        .collect::<Vec<_>>()
        .join(" | ")
}

/// The serving-request roster, in the order usage text lists it.
pub const REQUEST_SPECS: [RequestSpec; 6] = [
    RequestSpec {
        code: "pr",
        args: &["seed"],
        mutates: false,
        summary: "personalized PageRank pushed from a seed vertex",
    },
    RequestSpec {
        code: "prd",
        args: &["rounds"],
        mutates: false,
        summary: "PageRankDelta sweep capped at the given round count",
    },
    RequestSpec {
        code: "bfs",
        args: &["seed"],
        mutates: false,
        summary: "BFS level digest from a seed vertex",
    },
    RequestSpec {
        code: "label",
        args: &["v"],
        mutates: false,
        summary: "connected-component label lookup",
    },
    RequestSpec {
        code: "add",
        args: &["u", "v"],
        mutates: true,
        summary: "insert an edge into the dynamic graph",
    },
    RequestSpec {
        code: "del",
        args: &["u", "v"],
        mutates: true,
        summary: "delete an edge from the dynamic graph",
    },
];

/// Resolves a wire code (case-insensitive) to its [`RequestSpec`], or
/// `None` for an unknown code.
pub fn request_spec(code: &str) -> Option<&'static RequestSpec> {
    REQUEST_SPECS
        .iter()
        .find(|s| s.code.eq_ignore_ascii_case(code))
}

/// Balance summary of running Algorithm 1 (`PartitionBounds::
/// edge_balanced`) on an already-reordered graph — what a system
/// consuming the ordering would see. Uniform across orderings, which is
/// exactly what makes the CLI's report comparable between `--order vebo`
/// and any baseline.
pub fn chunked_balance_report(g: &Graph, num_partitions: usize) -> BalanceReport {
    let bounds = PartitionBounds::edge_balanced(g, num_partitions);
    let mut edge_counts = vec![0u64; bounds.num_partitions()];
    let mut vertex_counts = vec![0usize; bounds.num_partitions()];
    for (p, range) in bounds.iter() {
        vertex_counts[p] = range.len();
        edge_counts[p] = range.map(|v| g.in_degree(v as u32) as u64).sum();
    }
    BalanceReport::from_counts(edge_counts, vertex_counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_roster_name_resolves_with_matching_identity() {
        let reg = OrderingRegistry::new(8);
        for (name, ord) in reg.all() {
            // Registry names are lowercase tokens; trait names are the
            // display names — both must exist and the roster must be
            // complete.
            assert!(!ord.name().is_empty(), "{name}");
        }
        assert_eq!(reg.all().len(), ORDERING_NAMES.len());
    }

    #[test]
    fn resolution_is_case_insensitive_and_total_over_roster() {
        let reg = OrderingRegistry::new(4);
        assert!(reg.resolve("VEBO").is_some());
        assert!(reg.resolve("SlashBurn").is_some());
        assert!(reg.resolve("nonsense").is_none());
        assert!(reg.resolve("").is_none());
    }

    #[test]
    fn request_roster_resolves_and_classifies() {
        for spec in &REQUEST_SPECS {
            assert_eq!(request_spec(spec.code), Some(spec));
            assert!(spec.arity() >= 1 && spec.arity() <= 2, "{}", spec.code);
        }
        assert_eq!(request_spec("ADD").map(|s| s.arity()), Some(2));
        assert!(request_spec("add").unwrap().mutates);
        assert!(!request_spec("prd").unwrap().mutates);
        assert!(request_spec("walk").is_none());
    }

    #[test]
    fn request_grammar_derives_from_roster() {
        assert_eq!(request_spec("add").unwrap().grammar(), "add <u> <v>");
        assert_eq!(request_spec("prd").unwrap().grammar(), "prd <rounds>");
        let joined = request_grammar();
        for spec in &REQUEST_SPECS {
            assert!(joined.contains(&spec.grammar()), "{}", spec.code);
        }
    }

    #[test]
    fn chunked_report_covers_all_edges_and_vertices() {
        let g = vebo_graph::Dataset::TwitterLike.build(0.05);
        let report = chunked_balance_report(&g, 16);
        assert_eq!(report.vertex_counts.iter().sum::<usize>(), g.num_vertices());
        assert_eq!(report.edge_counts.iter().sum::<u64>(), g.num_edges() as u64);
    }
}
