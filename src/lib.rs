//! # vebo
//!
//! Facade crate for the VEBO workspace — a from-scratch Rust reproduction
//! of *"VEBO: A Vertex- and Edge-Balanced Ordering Heuristic to Load
//! Balance Parallel Graph Processing"* (Sun, Vandierendonck, Nikolopoulos,
//! PPoPP 2019).
//!
//! Re-exports the public APIs of every subsystem crate:
//!
//! * [`graph`] — graph representations, generators, datasets, I/O;
//! * [`core`] — the VEBO algorithm, balance metrics, theorem verifiers;
//! * [`baselines`] — RCM, Gorder, degree sort, random orderings;
//! * [`partition`] — Algorithm 1, Hilbert/CSR edge orders, layouts;
//! * [`engine`] — the graph processing engine: the `Executor` that owns
//!   threading, NUMA placement, scheduling, and instrumentation, plus the
//!   three system profiles (Ligra-, Polymer-, GraphGrind-like);
//! * [`algorithms`] — PR, PRD, BFS, BC, CC, SPMV, BF, BP;
//! * [`perfmodel`] — cache/TLB/branch simulators;
//! * [`distributed`] — streaming/multilevel distributed partitioners and
//!   the BSP cluster simulator for the paper's §VII future-work study.
//!
//! See `examples/quickstart.rs` for a guided tour.

#![warn(missing_docs)]

pub mod registry;

pub use registry::{
    chunked_balance_report, request_grammar, request_spec, OrderingRegistry, RequestSpec,
    ORDERING_NAMES, REQUEST_SPECS,
};

pub use vebo_algorithms as algorithms;
pub use vebo_baselines as baselines;
pub use vebo_core as core;
pub use vebo_distributed as distributed;
pub use vebo_engine as engine;
pub use vebo_graph as graph;
pub use vebo_partition as partition;
pub use vebo_perfmodel as perfmodel;
