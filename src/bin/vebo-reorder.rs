//! The standalone reordering tool described in the paper's artifact
//! appendix:
//!
//! ```text
//! ./VEBO -r 100 -p 384 original vebo
//! ```
//!
//! Reads a graph file (Ligra `AdjacencyGraph`, whitespace edge list, or
//! binary `.vgr` CSR — auto-detected by content, or forced with
//! `--format`), applies a vertex ordering resolved by name through the
//! [`OrderingRegistry`], and writes the reordered — isomorphic — graph in
//! the same format. Input is streamed in line-aligned chunks and parsed in
//! parallel, so billion-edge files never need a whole-file text buffer.
//! Also prints the Algorithm-1 balance report for the requested partition
//! count and the wall-clock reorder time; `--simulate` additionally runs
//! PageRank on the reordered graph through the engine's `Executor`
//! (GraphGrind-like profile, exact VEBO boundaries when the ordering is
//! VEBO) and prints the simulated 48-thread runtime.
//!
//! ```text
//! cargo run --release --bin vebo-reorder -- -p 384 input.adj output.adj
//! cargo run --release --bin vebo-reorder -- --order rcm --threads 4 input.el output.el
//! cargo run --release --bin vebo-reorder -- --format bin input.vgr output.vgr
//! cargo run --release --bin vebo-reorder -- --format bin --mmap input.vgr output.vgr
//! cargo run --release --bin vebo-reorder -- --simulate -p 48 input.el output.el
//! ```
//!
//! `--mmap` loads binary inputs through the zero-copy memory-mapped
//! loader (`vebo_graph::io::binary::mmap_binary_graph`): on 64-bit
//! little-endian hosts a version-2 `.vgr`'s CSR arrays are borrowed from
//! the page cache instead of being copied, which is the fastest reload
//! path for cached snapshots. The loaded-line on stderr reports which
//! storage backing ("owned", "mapped", or "compressed") the load
//! produced.
//!
//! `--compress` attaches delta-varint compressed neighbor lists to the
//! loaded and reordered graphs: the loaded line additionally reports
//! compressed-vs-raw target bytes and the compression ratio, binary
//! output is written as `.vgr` version 3 (varint sections instead of raw
//! targets), and `--simulate` runs the engine's compressed kernels.
//! Results are bit-identical to the plain representation.

use std::process::ExitCode;
use vebo::graph::io::{self, Format};
use vebo::graph::Graph;
use vebo::{chunked_balance_report, OrderingRegistry};
use vebo_engine::{Executor, PreparedGraph, SystemProfile};

struct Options {
    partitions: usize,
    track_vertex: Option<u32>,
    order: String,
    directed: bool,
    threads: Option<usize>,
    format: Option<Format>,
    mmap: bool,
    compress: bool,
    simulate: bool,
    input: String,
    output: String,
}

fn usage() -> String {
    format!(
        "vebo-reorder [options] [--] <input> <output>\n\
         \n\
         Reorders a graph file with VEBO (or a baseline ordering).\n\
         Formats: Ligra AdjacencyGraph, whitespace edge list, or binary CSR\n\
         (.vgr). The input format is auto-detected from the file contents\n\
         unless --format forces one; the output is written in the same\n\
         format as the input.\n\
         \n\
         Options:\n\
           -p <n>          number of partitions (default 384)\n\
           -r <vertex>     report the new id of this vertex (artifact's -r)\n\
           --order <name>  {} (default vebo)\n\
           --format <f>    auto | el | adj | bin (default auto)\n\
           --mmap          load binary (.vgr) inputs through the zero-copy\n\
                           memory-mapped loader instead of buffered reads\n\
           --compress      attach delta-varint compressed neighbor lists;\n\
                           binary output becomes .vgr v3 and the loaded\n\
                           line reports the compression ratio\n\
           --threads <n>   rayon threads for the reorder pipeline\n\
                           (default: all available cores)\n\
           --simulate      run PageRank on the reordered graph through the\n\
                           engine (GraphGrind-like profile, -p partitions)\n\
                           and print the simulated 48-thread runtime\n\
           --undirected    treat the input as undirected (text formats\n\
                           only; binary inputs store their directedness)\n\
           --              end of options (inputs may start with '-')\n\
           -h, --help      this text",
        OrderingRegistry::names().join(" | ")
    )
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options {
        partitions: 384,
        track_vertex: None,
        order: "vebo".into(),
        directed: true,
        threads: None,
        format: None,
        mmap: false,
        compress: false,
        simulate: false,
        input: String::new(),
        output: String::new(),
    };
    let mut positional = Vec::new();
    let mut options_done = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if options_done {
            positional.push(a);
            continue;
        }
        match a.as_str() {
            "--" => options_done = true,
            "-p" => {
                opts.partitions = it
                    .next()
                    .ok_or("missing value for -p")?
                    .parse()
                    .map_err(|e| format!("bad -p value: {e}"))?;
            }
            "-r" => {
                opts.track_vertex = Some(
                    it.next()
                        .ok_or("missing value for -r")?
                        .parse()
                        .map_err(|e| format!("bad -r value: {e}"))?,
                );
            }
            "--order" => {
                opts.order = it.next().ok_or("missing value for --order")?.to_lowercase();
            }
            "--format" => {
                let v = it
                    .next()
                    .ok_or("missing value for --format")?
                    .to_lowercase();
                opts.format = match v.as_str() {
                    "auto" => None,
                    other => Some(Format::from_name(other).ok_or(format!(
                        "bad --format value '{other}' (expected auto, el, adj, or bin)"
                    ))?),
                };
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .ok_or("missing value for --threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads value: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                opts.threads = Some(n);
            }
            "--undirected" => opts.directed = false,
            "--mmap" => opts.mmap = true,
            "--compress" => opts.compress = true,
            "--simulate" => opts.simulate = true,
            "-h" | "--help" => return Err(String::new()),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if positional.len() != 2 {
        return Err("expected exactly two positional arguments: <input> <output>".into());
    }
    opts.input = positional.remove(0);
    opts.output = positional.remove(0);
    Ok(opts)
}

fn load(
    path: &str,
    directed: bool,
    format: Option<Format>,
    mmap: bool,
) -> Result<(Graph, Format), String> {
    let mode = if mmap {
        io::LoadMode::Mmap
    } else {
        io::LoadMode::Buffered
    };
    io::load_graph_with(path, directed, format, mode)
        .map_err(|e| format!("cannot read {path}: {e}"))
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1).collect()) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let registry = OrderingRegistry::new(opts.partitions);
    let Some(ordering) = registry.resolve(&opts.order) else {
        eprintln!(
            "error: unknown ordering '{}' (expected one of: {})",
            opts.order,
            OrderingRegistry::names().join(", ")
        );
        return ExitCode::from(2);
    };

    let pool = match rayon::ThreadPoolBuilder::new()
        .num_threads(opts.threads.unwrap_or(0))
        .build()
    {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot build thread pool: {e}");
            return ExitCode::FAILURE;
        }
    };
    let threads = pool.current_num_threads();

    // Load inside the pool so the chunked parse parallelizes too.
    let t_load = std::time::Instant::now();
    let (g, format) =
        match pool.install(|| load(&opts.input, opts.directed, opts.format, opts.mmap)) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
    let g = if opts.compress {
        g.with_compressed()
    } else {
        g
    };
    // Compressed-vs-raw working-set accounting: varint bytes the kernels
    // stream vs the 4 bytes/edge of the raw target array.
    let comp_note = match g.compression_stats() {
        Some(s) => format!(
            ", varint {}/{} bytes, ratio {:.2}",
            s.compressed_bytes,
            s.raw_bytes,
            s.ratio()
        ),
        None => String::new(),
    };
    eprintln!(
        "loaded {}: {} vertices, {} edges ({format}, {} storage{comp_note}, {:.3}s)",
        opts.input,
        g.num_vertices(),
        g.num_edges(),
        g.storage_kind(),
        t_load.elapsed().as_secs_f64(),
    );
    if !opts.directed && format == Format::Binary && g.is_directed() {
        eprintln!("warning: --undirected ignored; binary input stores the directed flag");
    }

    let t0 = std::time::Instant::now();
    let (perm, starts, reordered, compute_time) = pool.install(|| {
        let t = std::time::Instant::now();
        // VEBO resolves through `compute_full` so Algorithm 2's exact
        // phase-3 boundaries reach the engine's builder under --simulate;
        // every other ordering has no boundaries to forward.
        let (perm, starts) = if opts.order == "vebo" {
            let res = vebo::core::Vebo::new(opts.partitions).compute_full(&g);
            (res.permutation, Some(res.starts))
        } else {
            (ordering.compute(&g), None)
        };
        let compute_time = t.elapsed();
        let reordered = perm.apply_graph(&g);
        // Re-encode for the new id space: the reordered graph gets its
        // own companion, so binary output persists as `.vgr` v3 and the
        // --simulate kernels stream the compressed lists.
        let reordered = if opts.compress {
            reordered.with_compressed()
        } else {
            reordered
        };
        (perm, starts, reordered, compute_time)
    });
    let total_time = t0.elapsed();

    let report = chunked_balance_report(&reordered, opts.partitions);
    eprintln!(
        "{} @ P={}: edge imbalance {} | vertex imbalance {} | reorder {:.3}s \
         (ordering {:.3}s + relabel {:.3}s, {} thread{})",
        ordering.name(),
        opts.partitions,
        report.edge_imbalance,
        report.vertex_imbalance,
        total_time.as_secs_f64(),
        compute_time.as_secs_f64(),
        (total_time - compute_time).as_secs_f64(),
        threads,
        if threads == 1 { "" } else { "s" },
    );

    if let Some(v) = opts.track_vertex {
        if (v as usize) < g.num_vertices() {
            eprintln!("vertex {v} -> new id {}", perm.new_id(v));
        } else {
            eprintln!("warning: tracked vertex {v} out of range");
        }
    }

    if let Err(e) = io::save_graph(&reordered, &opts.output, format) {
        eprintln!("error writing {}: {e}", opts.output);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} ({format})", opts.output);

    if opts.simulate {
        // The same execution path every harness uses: PreparedGraph
        // builder (with exact VEBO boundaries when available) + Executor.
        // Runs after the save so the builder can take ownership of the
        // reordered graph instead of cloning it (inputs can be huge).
        use vebo::algorithms::pagerank::{pagerank, PageRankConfig};
        let profile = vebo::partition::EdgeOrder::Csr;
        let profile = SystemProfile::graphgrind_like(profile).with_partitions(opts.partitions);
        let exec = Executor::new(profile);
        let pg = match PreparedGraph::builder(reordered)
            .profile(profile)
            .vebo_starts(starts.as_deref())
            .build()
        {
            Ok(pg) => pg,
            Err(e) => {
                eprintln!("error: cannot prepare graph for simulation: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cfg = PageRankConfig {
            iterations: 3,
            ..Default::default()
        };
        let (_, report) = pool.install(|| pagerank(&exec, &pg, &cfg));
        let plan = exec.placement(pg.num_tasks());
        eprintln!(
            "simulate: PR x{} on {} tasks{} -> simulated {}-thread runtime {:.3} ms",
            cfg.iterations,
            pg.num_tasks(),
            match &plan {
                Some(p) => format!(" over {} sockets", p.num_sockets()),
                None => String::new(),
            },
            profile.topology.num_threads,
            exec.simulated_seconds(&report) * 1e3,
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Options, String> {
        parse_args(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn parses_artifact_invocation() {
        // The appendix's `./VEBO -r 100 -p 384 original vebo`.
        let o = args(&["-r", "100", "-p", "384", "original", "vebo"]).unwrap();
        assert_eq!(o.partitions, 384);
        assert_eq!(o.track_vertex, Some(100));
        assert_eq!(o.order, "vebo");
        assert_eq!(o.input, "original");
        assert_eq!(o.output, "vebo");
        assert!(o.directed);
        assert_eq!(o.threads, None);
        assert_eq!(o.format, None);
    }

    #[test]
    fn parses_simulate() {
        assert!(!args(&["a", "b"]).unwrap().simulate);
        assert!(args(&["--simulate", "a", "b"]).unwrap().simulate);
    }

    #[test]
    fn parses_compress() {
        assert!(!args(&["a", "b"]).unwrap().compress);
        assert!(args(&["--compress", "a", "b"]).unwrap().compress);
    }

    #[test]
    fn parses_order_and_undirected() {
        let o = args(&["--order", "SlashBurn", "--undirected", "a", "b"]).unwrap();
        assert_eq!(o.order, "slashburn");
        assert!(!o.directed);
    }

    #[test]
    fn parses_threads() {
        let o = args(&["--threads", "4", "a", "b"]).unwrap();
        assert_eq!(o.threads, Some(4));
        assert!(args(&["--threads", "0", "a", "b"]).is_err());
        assert!(args(&["--threads", "x", "a", "b"]).is_err());
        assert!(args(&["--threads"]).is_err());
    }

    #[test]
    fn parses_format() {
        assert_eq!(args(&["a", "b"]).unwrap().format, None);
        assert_eq!(args(&["--format", "auto", "a", "b"]).unwrap().format, None);
        assert_eq!(
            args(&["--format", "el", "a", "b"]).unwrap().format,
            Some(Format::EdgeList)
        );
        assert_eq!(
            args(&["--format", "ADJ", "a", "b"]).unwrap().format,
            Some(Format::AdjacencyGraph)
        );
        assert_eq!(
            args(&["--format", "bin", "a", "b"]).unwrap().format,
            Some(Format::Binary)
        );
        assert!(args(&["--format", "csv", "a", "b"]).is_err());
        assert!(args(&["--format"]).is_err());
    }

    #[test]
    fn double_dash_allows_dashed_filenames() {
        let o = args(&["-p", "8", "--", "-weird.el", "-out.el"]).unwrap();
        assert_eq!(o.partitions, 8);
        assert_eq!(o.input, "-weird.el");
        assert_eq!(o.output, "-out.el");
        // Everything after `--` is positional, even things that look like
        // options.
        let o = args(&["--", "--order", "-x"]).unwrap();
        assert_eq!(o.input, "--order");
        assert_eq!(o.output, "-x");
        assert_eq!(o.order, "vebo");
        // Without `--`, dashed names are still rejected as unknown options.
        assert!(args(&["-weird.el", "-out.el"]).is_err());
        // `--` with too few positionals still errors.
        assert!(args(&["--", "only-one"]).is_err());
    }

    #[test]
    fn rejects_missing_positionals() {
        assert!(args(&["-p", "8", "only-one"]).is_err());
        assert!(args(&["-p"]).is_err());
        assert!(args(&["--wat", "a", "b"]).is_err());
    }

    #[test]
    fn round_trips_an_edge_list_through_every_order() {
        let dir = std::env::temp_dir().join("vebo-reorder-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.el");
        // A small star plus a chain, as an edge list.
        let mut text = String::new();
        for u in 1..20 {
            text.push_str(&format!("{u} 0\n"));
        }
        text.push_str("20 21\n21 22\n");
        std::fs::write(&input, &text).unwrap();
        let (g, format) = load(input.to_str().unwrap(), true, None, false).unwrap();
        assert_eq!(format, Format::EdgeList);
        assert_eq!(g.num_vertices(), 23);
        assert_eq!(g.num_edges(), 21);
        // Every registry ordering round-trips through file I/O.
        for (name, ordering) in OrderingRegistry::new(4).all() {
            let perm = ordering.compute(&g);
            let h = perm.apply_graph(&g);
            let out = dir.join(format!("out-{name}.el"));
            io::save_edge_list(&h, &out).unwrap();
            let (back, _) = load(out.to_str().unwrap(), true, None, false).unwrap();
            assert_eq!(back.num_edges(), g.num_edges(), "{name}");
            assert_eq!(back.num_vertices(), g.num_vertices(), "{name}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn round_trips_binary_format() {
        let dir = std::env::temp_dir().join("vebo-reorder-bin-test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)], true);
        let path = dir.join("g.vgr");
        io::save_graph(&g, &path, Format::Binary).unwrap();
        // Auto-detection sees the magic bytes.
        let (h, format) = load(path.to_str().unwrap(), true, None, false).unwrap();
        assert_eq!(format, Format::Binary);
        assert_eq!(h.csr().offsets(), g.csr().offsets());
        assert_eq!(h.csr().targets(), g.csr().targets());
        // Forcing the wrong format fails loudly.
        assert!(load(path.to_str().unwrap(), true, Some(Format::EdgeList), false).is_err());
        // The --mmap path loads the same graph (auto-detected too).
        let (m, format) = load(path.to_str().unwrap(), true, None, true).unwrap();
        assert_eq!(format, Format::Binary);
        assert_eq!(m.csr().offsets(), g.csr().offsets());
        assert_eq!(m.csr().targets(), g.csr().targets());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("vebo-reorder-garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.el");
        std::fs::write(&path, "not numbers at all\n").unwrap();
        assert!(load(path.to_str().unwrap(), true, None, false).is_err());
        assert!(load("/nonexistent/nope.el", true, None, false).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
