//! The standalone reordering tool described in the paper's artifact
//! appendix:
//!
//! ```text
//! ./VEBO -r 100 -p 384 original vebo
//! ```
//!
//! Reads a graph file (Ligra `AdjacencyGraph` or whitespace edge list,
//! auto-detected), applies a vertex ordering, and writes the reordered —
//! isomorphic — graph. Also prints the balance report for the requested
//! partition count.
//!
//! ```text
//! cargo run --release --bin vebo-reorder -- -p 384 input.adj output.adj
//! cargo run --release --bin vebo-reorder -- --order rcm input.el output.el
//! ```

use std::io::Read;
use std::process::ExitCode;
use vebo::baselines::{DegreeSort, Gorder, RandomOrder, Rcm, SlashBurn};
use vebo::core::{balance::BalanceReport, Vebo};
use vebo::graph::{io, Graph, VertexOrdering};
use vebo::partition::MetisLikeOrder;

struct Options {
    partitions: usize,
    track_vertex: Option<u32>,
    order: String,
    directed: bool,
    input: String,
    output: String,
}

fn usage() -> &'static str {
    "vebo-reorder [options] <input> <output>\n\
     \n\
     Reorders a graph file with VEBO (or a baseline ordering).\n\
     Formats: Ligra AdjacencyGraph or whitespace edge list (auto-detected;\n\
     output format follows the input format).\n\
     \n\
     Options:\n\
       -p <n>          number of partitions (default 384)\n\
       -r <vertex>     report the new id of this vertex (artifact's -r)\n\
       --order <name>  vebo | rcm | gorder | hightolow | random |\n\
                       slashburn | metis (default vebo)\n\
       --undirected    treat the input as undirected\n\
       -h, --help      this text"
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options {
        partitions: 384,
        track_vertex: None,
        order: "vebo".into(),
        directed: true,
        input: String::new(),
        output: String::new(),
    };
    let mut positional = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-p" => {
                opts.partitions = it
                    .next()
                    .ok_or("missing value for -p")?
                    .parse()
                    .map_err(|e| format!("bad -p value: {e}"))?;
            }
            "-r" => {
                opts.track_vertex = Some(
                    it.next()
                        .ok_or("missing value for -r")?
                        .parse()
                        .map_err(|e| format!("bad -r value: {e}"))?,
                );
            }
            "--order" => {
                opts.order = it.next().ok_or("missing value for --order")?.to_lowercase();
            }
            "--undirected" => opts.directed = false,
            "-h" | "--help" => return Err(String::new()),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if positional.len() != 2 {
        return Err("expected exactly two positional arguments: <input> <output>".into());
    }
    opts.input = positional.remove(0);
    opts.output = positional.remove(0);
    Ok(opts)
}

fn load(path: &str, directed: bool) -> Result<(Graph, bool), String> {
    let mut text = String::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    let is_adjacency = text.trim_start().starts_with("AdjacencyGraph");
    let g = if is_adjacency {
        io::read_adjacency_graph(text.as_bytes(), directed)
    } else {
        io::read_edge_list(text.as_bytes(), directed, None)
    }
    .map_err(|e| format!("cannot parse {path}: {e}"))?;
    Ok((g, is_adjacency))
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1).collect()) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let (g, is_adjacency) = match load(&opts.input, opts.directed) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {}: {} vertices, {} edges ({})",
        opts.input,
        g.num_vertices(),
        g.num_edges(),
        if is_adjacency { "AdjacencyGraph" } else { "edge list" }
    );

    let t0 = std::time::Instant::now();
    let perm = match opts.order.as_str() {
        "vebo" => {
            let result = Vebo::new(opts.partitions).compute_full(&g);
            let report = BalanceReport::from_result(&result);
            eprintln!(
                "VEBO @ P={}: edge imbalance {} | vertex imbalance {}",
                opts.partitions, report.edge_imbalance, report.vertex_imbalance
            );
            result.permutation
        }
        "rcm" => Rcm.compute(&g),
        "gorder" => Gorder::new().compute(&g),
        "hightolow" => DegreeSort.compute(&g),
        "random" => RandomOrder::default().compute(&g),
        "slashburn" => SlashBurn::default().compute(&g),
        "metis" => MetisLikeOrder::new(opts.partitions).compute(&g),
        other => {
            eprintln!("error: unknown ordering '{other}'");
            return ExitCode::from(2);
        }
    };
    eprintln!("reordering time: {:.3}s", t0.elapsed().as_secs_f64());

    if let Some(v) = opts.track_vertex {
        if (v as usize) < g.num_vertices() {
            eprintln!("vertex {v} -> new id {}", perm.new_id(v));
        } else {
            eprintln!("warning: tracked vertex {v} out of range");
        }
    }

    let reordered = perm.apply_graph(&g);
    let write = |file: std::fs::File| {
        if is_adjacency {
            io::write_adjacency_graph(&reordered, file)
        } else {
            io::write_edge_list(&reordered, file)
        }
    };
    match std::fs::File::create(&opts.output).map_err(|e| e.to_string()).and_then(|f| write(f).map_err(|e| e.to_string())) {
        Ok(()) => {
            eprintln!("wrote {}", opts.output);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error writing {}: {e}", opts.output);
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Options, String> {
        parse_args(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn parses_artifact_invocation() {
        // The appendix's `./VEBO -r 100 -p 384 original vebo`.
        let o = args(&["-r", "100", "-p", "384", "original", "vebo"]).unwrap();
        assert_eq!(o.partitions, 384);
        assert_eq!(o.track_vertex, Some(100));
        assert_eq!(o.order, "vebo");
        assert_eq!(o.input, "original");
        assert_eq!(o.output, "vebo");
        assert!(o.directed);
    }

    #[test]
    fn parses_order_and_undirected() {
        let o = args(&["--order", "SlashBurn", "--undirected", "a", "b"]).unwrap();
        assert_eq!(o.order, "slashburn");
        assert!(!o.directed);
    }

    #[test]
    fn rejects_missing_positionals() {
        assert!(args(&["-p", "8", "only-one"]).is_err());
        assert!(args(&["-p"]).is_err());
        assert!(args(&["--wat", "a", "b"]).is_err());
    }

    #[test]
    fn round_trips_an_edge_list_through_every_order() {
        let dir = std::env::temp_dir().join("vebo-reorder-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.el");
        // A small star plus a chain, as an edge list.
        let mut text = String::new();
        for u in 1..20 {
            text.push_str(&format!("{u} 0\n"));
        }
        text.push_str("20 21\n21 22\n");
        std::fs::write(&input, &text).unwrap();
        let (g, is_adj) = load(input.to_str().unwrap(), true).unwrap();
        assert!(!is_adj);
        assert_eq!(g.num_vertices(), 23);
        assert_eq!(g.num_edges(), 21);
        for order in ["vebo", "rcm", "gorder", "hightolow", "random", "slashburn", "metis"] {
            let perm: vebo::graph::Permutation = match order {
                "vebo" => Vebo::new(4).compute_full(&g).permutation,
                "rcm" => Rcm.compute(&g),
                "gorder" => Gorder::new().compute(&g),
                "hightolow" => DegreeSort.compute(&g),
                "random" => RandomOrder::default().compute(&g),
                "slashburn" => SlashBurn::default().compute(&g),
                _ => MetisLikeOrder::new(4).compute(&g),
            };
            let h = perm.apply_graph(&g);
            let out = dir.join(format!("out-{order}.el"));
            io::save_edge_list(&h, &out).unwrap();
            let (back, _) = load(out.to_str().unwrap(), true).unwrap();
            assert_eq!(back.num_edges(), g.num_edges(), "{order}");
            assert_eq!(back.num_vertices(), g.num_vertices(), "{order}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("vebo-reorder-garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.el");
        std::fs::write(&path, "not numbers at all\n").unwrap();
        assert!(load(path.to_str().unwrap(), true).is_err());
        assert!(load("/nonexistent/nope.el", true).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
