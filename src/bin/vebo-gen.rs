//! Dataset generator companion to `vebo-reorder`: materializes any of the
//! paper's synthetic dataset analogues as an on-disk graph file, in any of
//! the supported formats. Used by the CI I/O smoke job to round-trip a
//! ~1M-edge RMAT graph through text and binary formats.
//!
//! ```text
//! cargo run --release --bin vebo-gen -- rmat27 --scale 2 rmat.el
//! cargo run --release --bin vebo-gen -- twitter --format bin twitter.vgr
//! ```

use std::process::ExitCode;
use vebo::graph::io::{self, Format};
use vebo::graph::Dataset;

struct Options {
    dataset: Dataset,
    scale: f64,
    format: Option<Format>,
    compress: bool,
    output: String,
}

fn usage() -> String {
    format!(
        "vebo-gen [options] [--] <dataset> <output>\n\
         \n\
         Generates a synthetic dataset analogue and writes it to a file.\n\
         Datasets: {}\n\
         \n\
         Options:\n\
           --scale <f>     size multiplier (default 1.0)\n\
           --format <f>    el | adj | bin (default: by output extension,\n\
                           falling back to el)\n\
           --compress      attach delta-varint compressed neighbor lists:\n\
                           the summary reports the compression ratio and\n\
                           binary output is written as .vgr v3\n\
           --              end of options\n\
           -h, --help      this text",
        Dataset::ALL.map(|d| d.name()).join(" | ")
    )
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut scale = 1.0f64;
    let mut format = None;
    let mut compress = false;
    let mut positional = Vec::new();
    let mut options_done = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if options_done {
            positional.push(a);
            continue;
        }
        match a.as_str() {
            "--" => options_done = true,
            "--scale" => {
                scale = it
                    .next()
                    .ok_or("missing value for --scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale value: {e}"))?;
                if !scale.is_finite() || scale <= 0.0 {
                    return Err("--scale must be a positive finite number".into());
                }
            }
            "--format" => {
                let v = it
                    .next()
                    .ok_or("missing value for --format")?
                    .to_lowercase();
                format = Some(Format::from_name(&v).ok_or(format!(
                    "bad --format value '{v}' (expected el, adj, or bin)"
                ))?);
            }
            "--compress" => compress = true,
            "-h" | "--help" => return Err(String::new()),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if positional.len() != 2 {
        return Err("expected exactly two positional arguments: <dataset> <output>".into());
    }
    let dataset = Dataset::from_name(&positional[0]).ok_or(format!(
        "unknown dataset '{}' (expected one of: {})",
        positional[0],
        Dataset::ALL.map(|d| d.name()).join(", ")
    ))?;
    Ok(Options {
        dataset,
        scale,
        format,
        compress,
        output: positional.remove(1),
    })
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1).collect()) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let format = opts
        .format
        .or_else(|| Format::from_extension(std::path::Path::new(&opts.output)))
        .unwrap_or(Format::EdgeList);
    let g = opts.dataset.build(opts.scale);
    let g = if opts.compress {
        g.with_compressed()
    } else {
        g
    };
    let comp_note = match g.compression_stats() {
        Some(s) => format!(
            ", varint {}/{} bytes, ratio {:.2}",
            s.compressed_bytes,
            s.raw_bytes,
            s.ratio()
        ),
        None => String::new(),
    };
    eprintln!(
        "generated {} @ scale {}: {} vertices, {} edges{comp_note}",
        opts.dataset.name(),
        opts.scale,
        g.num_vertices(),
        g.num_edges()
    );
    match io::save_graph(&g, &opts.output, format) {
        Ok(()) => {
            eprintln!("wrote {} ({format})", opts.output);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error writing {}: {e}", opts.output);
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Options, String> {
        parse_args(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn parses_dataset_scale_and_format() {
        let o = args(&["rmat27", "--scale", "0.5", "--format", "bin", "out.vgr"]).unwrap();
        assert_eq!(o.dataset, Dataset::Rmat27Like);
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.format, Some(Format::Binary));
        assert_eq!(o.output, "out.vgr");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(args(&["nosuch", "out.el"]).is_err());
        assert!(args(&["rmat27"]).is_err());
        assert!(args(&["rmat27", "--scale", "-1", "out.el"]).is_err());
        assert!(args(&["rmat27", "--scale", "inf", "out.el"]).is_err());
        assert!(args(&["rmat27", "--scale", "nan", "out.el"]).is_err());
        assert!(args(&["rmat27", "--format", "csv", "out.el"]).is_err());
        assert!(args(&["--weird", "rmat27", "out.el"]).is_err());
    }

    #[test]
    fn parses_compress() {
        assert!(!args(&["rmat27", "out.el"]).unwrap().compress);
        assert!(args(&["rmat27", "--compress", "out.el"]).unwrap().compress);
    }

    #[test]
    fn double_dash_allows_dashed_output() {
        let o = args(&["--", "usaroad", "-out.el"]).unwrap();
        assert_eq!(o.dataset, Dataset::UsaRoadLike);
        assert_eq!(o.output, "-out.el");
    }

    #[test]
    fn generated_file_round_trips_in_every_format() {
        let dir = std::env::temp_dir().join("vebo-gen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = Dataset::YahooLike.build(0.02);
        for f in Format::ALL {
            let path = dir.join(format!("y.{}", f.name()));
            io::save_graph(&g, &path, f).unwrap();
            let (h, sniffed) = io::load_graph(&path, g.is_directed(), None).unwrap();
            assert_eq!(sniffed, f);
            assert_eq!(h.csr().offsets(), g.csr().offsets());
            assert_eq!(h.csr().targets(), g.csr().targets());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
